// Package zoo is the parameterized model registry: every benchmark
// family the repo knows — the paper's circuits (internal/models), the
// IR-native families added on top (elevator, traffic controller,
// protocol stack), and imported FSM-toolkit machines — registered by
// name with named integer parameters, default values, and a ladder of
// suggested sizes. Everything builds to the manager-independent IR
// (internal/ir), so one registry entry feeds the icibench grids, the
// fuzzer corpus, and the icid builtin-model endpoint alike, and a
// zoo-built model shares its canonical form (and therefore its icid
// cache key) with the equivalent text submission.
package zoo

import (
	"fmt"
	"sort"

	"repro/internal/ir"
)

// Size is a named-parameter assignment. Boolean knobs are encoded 0/1.
type Size map[string]int

// Get reads a parameter with a fallback.
func (s Size) Get(key string, def int) int {
	if v, ok := s[key]; ok {
		return v
	}
	return def
}

// Entry is one registered model family.
type Entry struct {
	Name string // registry key, e.g. "fifo", "elevator", "fsm/turnstile"
	Desc string // one-line description for listings

	// Defaults is the complete parameter set with default values; it
	// doubles as the schema — Model rejects overrides naming any other
	// parameter.
	Defaults Size

	// Sizes are the suggested grid points (overrides merged onto
	// Defaults), smallest first: Sizes[0] is the smoke-test size every
	// registered entry must instantiate and verify at.
	Sizes []Size

	// Build constructs the IR at a complete parameter assignment.
	Build func(Size) (*ir.Model, error)
}

// Model builds the entry at Defaults merged with overrides. Unknown
// parameter names are rejected — the validation path for user-supplied
// sizes (the icid builtin endpoint).
func (e Entry) Model(overrides Size) (*ir.Model, error) {
	s := Size{}
	for k, v := range e.Defaults {
		s[k] = v
	}
	for k, v := range overrides {
		if _, ok := e.Defaults[k]; !ok {
			return nil, fmt.Errorf("zoo: %s has no parameter %q", e.Name, k)
		}
		s[k] = v
	}
	return e.Build(s)
}

var registry = map[string]Entry{}

// Register adds an entry; duplicate or anonymous entries are bugs.
func Register(e Entry) {
	if e.Name == "" || e.Build == nil {
		panic("zoo: entry needs a name and a builder")
	}
	if _, dup := registry[e.Name]; dup {
		panic(fmt.Sprintf("zoo: duplicate entry %q", e.Name))
	}
	if len(e.Sizes) == 0 {
		e.Sizes = []Size{{}}
	}
	registry[e.Name] = e
}

// Get looks up an entry by name.
func Get(name string) (Entry, bool) {
	e, ok := registry[name]
	return e, ok
}

// Names lists the registered entries, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Build is the one-call form: look up name, merge overrides, build.
func Build(name string, overrides Size) (*ir.Model, error) {
	e, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("zoo: unknown model %q", name)
	}
	return e.Model(overrides)
}
