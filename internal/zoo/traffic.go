package zoo

import (
	"fmt"

	"repro/internal/ir"
)

// The traffic-controller family: N roads share an intersection. A
// round-robin token (`turn`) grants one road a green-yellow-all-red
// phase cycle; a pedestrian button extends the green phase. The lamp
// outputs are observation variables — pure functions of (turn, phase),
// declared as functional dependencies. The safety property is the
// pairwise mutual exclusion of non-red roads (the natural implicit
// conjunction over road pairs) plus the phase/turn type invariants.
//
// The seeded bug is a faulty yellow lamp driver that lights yellow on
// every road whenever any road is in the yellow phase.
func buildTraffic(s Size) (*ir.Model, error) {
	n := s["roads"]
	bug := boolKnob(s, "bug")
	if n < 2 || n > 4 {
		return nil, fmt.Errorf("zoo: traffic needs 2 <= roads <= 4 (got %d)", n)
	}
	tb := bits(n)

	b := ir.NewBuilder(fmt.Sprintf("traffic-n%d", n))
	b.ParamInt("roads", n)
	b.ParamBool("bug", bug)

	btn := b.Input("btn")

	turnBits := b.States("turn", tb, false)
	turn := ir.FromNodes(turnBits)
	phaseBits := b.States("phase", 2, false)
	phase := ir.FromNodes(phaseBits)

	const (
		phGreen  = 0
		phYellow = 1
		phAllRed = 2
	)

	// Phase cycle: green holds while the button is pressed, then
	// yellow, then an all-red gap that passes the turn.
	adv := ir.And(ir.EqConstW(phase, phGreen), ir.Not(btn))
	phaseNext := ir.MuxW(adv, ir.ConstWord(phYellow, 2),
		ir.MuxW(ir.EqConstW(phase, phYellow), ir.ConstWord(phAllRed, 2),
			ir.MuxW(ir.EqConstW(phase, phAllRed), ir.ConstWord(phGreen, 2), phase)))
	wrap := ir.MuxW(ir.EqConstW(turn, uint64(n-1)), ir.ConstWord(0, tb), ir.IncW(turn))
	turnNext := ir.MuxW(ir.EqConstW(phase, phAllRed), wrap, turn)
	for i, pb := range phaseBits {
		b.SetNext(pb, phaseNext.Bit(i))
	}
	for i, tbit := range turnBits {
		b.SetNext(tbit, turnNext.Bit(i))
	}

	// Lamp observations. Initial values must satisfy the dependency in
	// the initial state (turn 0, phase green).
	lampGrn := func(t ir.Word, p ir.Word, r int) *ir.Node {
		return ir.And(ir.EqConstW(t, uint64(r)), ir.EqConstW(p, phGreen))
	}
	lampYlw := func(t ir.Word, p ir.Word, r int) *ir.Node {
		if bug {
			// The faulty driver lights every yellow lamp in the yellow
			// phase, regardless of whose turn it is.
			return ir.EqConstW(p, phYellow)
		}
		return ir.And(ir.EqConstW(t, uint64(r)), ir.EqConstW(p, phYellow))
	}
	grn := make([]*ir.Node, n)
	ylw := make([]*ir.Node, n)
	for r := 0; r < n; r++ {
		grn[r] = b.State(fmt.Sprintf("grn%d", r), r == 0)
		ylw[r] = b.State(fmt.Sprintf("ylw%d", r), false)
		b.SetNext(grn[r], lampGrn(turnNext, phaseNext, r))
		b.Dep(grn[r], lampGrn(turn, phase, r))
		b.SetNext(ylw[r], lampYlw(turnNext, phaseNext, r))
		b.Dep(ylw[r], lampYlw(turn, phase, r))
	}

	// Pairwise exclusion of non-red roads + type invariants.
	nonred := make([]*ir.Node, n)
	for r := 0; r < n; r++ {
		nonred[r] = ir.Or(grn[r], ylw[r])
	}
	for r := 0; r < n; r++ {
		for q := r + 1; q < n; q++ {
			b.Good(ir.Not(ir.And(nonred[r], nonred[q])))
		}
	}
	b.Good(ir.LtW(phase, ir.ConstWord(3, 2)))
	if n != 1<<uint(tb) {
		b.Good(ir.LtW(turn, ir.ConstWord(uint64(n), tb)))
	}
	return b.Build(), nil
}

func init() {
	Register(Entry{
		Name:     "traffic",
		Desc:     "round-robin traffic controller with lamp FDs: pairwise non-red exclusion conjuncts",
		Defaults: Size{"roads": 3, "bug": 0},
		Sizes:    []Size{{"roads": 2}, {"roads": 3}, {"roads": 4}},
		Build:    buildTraffic,
	})
}
