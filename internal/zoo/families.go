package zoo

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/models"
)

// The paper's six benchmark families, wrapped as registry entries.
// Each Build validates its parameters and maps them onto the model
// config, so a bad user-supplied size is an error, never a panic.

func boolKnob(s Size, key string) bool { return s.Get(key, 0) != 0 }

func init() {
	Register(Entry{
		Name:     "fifo",
		Desc:     "typed FIFO queue of Section IV.A: per-slot type-constraint conjuncts",
		Defaults: Size{"width": 8, "depth": 5, "bound": 128, "bug": 0, "slot-major": 0},
		Sizes: []Size{
			{"width": 3, "depth": 2, "bound": 5},
			{"width": 8, "depth": 5},
			{"width": 8, "depth": 10},
		},
		Build: func(s Size) (*ir.Model, error) {
			w, d := s["width"], s["depth"]
			if w < 1 || d < 1 {
				return nil, fmt.Errorf("zoo: fifo needs width, depth >= 1 (got %d, %d)", w, d)
			}
			if b := s["bound"]; b < 0 || (w < 63 && uint64(b) > 1<<uint(w)) {
				return nil, fmt.Errorf("zoo: fifo bound %d does not fit %d bits", b, w)
			}
			return models.BuildFIFO(models.FIFOConfig{
				Width: w, Depth: d, Bound: uint64(s["bound"]),
				Bug: boolKnob(s, "bug"), SlotMajor: boolKnob(s, "slot-major"),
			}), nil
		},
	})

	Register(Entry{
		Name:     "network",
		Desc:     "buffered request/ack network of Section IV.A with per-processor counters and FDs",
		Defaults: Size{"procs": 4, "bug": 0},
		Sizes:    []Size{{"procs": 2}, {"procs": 4}, {"procs": 8}},
		Build: func(s Size) (*ir.Model, error) {
			n := s["procs"]
			if n < 1 || n >= 16 {
				return nil, fmt.Errorf("zoo: network needs 1 <= procs < 16 (got %d)", n)
			}
			return models.BuildNetwork(models.NetworkConfig{Procs: n, Bug: boolKnob(s, "bug")}), nil
		},
	})

	Register(Entry{
		Name:     "filter",
		Desc:     "moving-average filter of Section IV (Figure 2): pipelined adder tree vs delayed spec",
		Defaults: Size{"depth": 4, "width": 8, "assist": 0, "bug": 0},
		Sizes: []Size{
			{"depth": 2, "width": 1},
			{"depth": 4, "width": 8, "assist": 1},
			{"depth": 8, "width": 8, "assist": 1},
		},
		Build: func(s Size) (*ir.Model, error) {
			d, w := s["depth"], s["width"]
			if d < 2 || d&(d-1) != 0 {
				return nil, fmt.Errorf("zoo: filter depth must be a power of two >= 2 (got %d)", d)
			}
			if w < 1 {
				return nil, fmt.Errorf("zoo: filter needs width >= 1 (got %d)", w)
			}
			return models.BuildFilter(models.FilterConfig{
				Depth: d, SampleWidth: w, Assist: boolKnob(s, "assist"), Bug: boolKnob(s, "bug"),
			}), nil
		},
	})

	Register(Entry{
		Name:     "pipeline",
		Desc:     "pipelined processor vs ISA spec of Section IV.B (Figure 3)",
		Defaults: Size{"regs": 2, "width": 1, "assist": 0, "bug": 0, "separate-reg-files": 0},
		Sizes: []Size{
			{"regs": 2, "width": 1},
			{"regs": 2, "width": 2, "assist": 1},
			{"regs": 4, "width": 2, "assist": 1},
		},
		Build: func(s Size) (*ir.Model, error) {
			r, w := s["regs"], s["width"]
			if r < 2 || r&(r-1) != 0 {
				return nil, fmt.Errorf("zoo: pipeline needs a power-of-two register count >= 2 (got %d)", r)
			}
			if w < 1 {
				return nil, fmt.Errorf("zoo: pipeline needs width >= 1 (got %d)", w)
			}
			return models.BuildPipeline(models.PipelineConfig{
				Regs: r, Width: w, Assist: boolKnob(s, "assist"), Bug: boolKnob(s, "bug"),
				SeparateRegFiles: boolKnob(s, "separate-reg-files"),
			}), nil
		},
	})

	Register(Entry{
		Name:     "coherence",
		Desc:     "directory-based MSI cache coherence: SWMR + directory-consistency conjuncts and FDs",
		Defaults: Size{"caches": 3, "bug": 0},
		Sizes:    []Size{{"caches": 2}, {"caches": 4}, {"caches": 6}},
		Build: func(s Size) (*ir.Model, error) {
			n := s["caches"]
			if n < 2 || n > 8 {
				return nil, fmt.Errorf("zoo: coherence needs 2 <= caches <= 8 (got %d)", n)
			}
			return models.BuildCoherence(models.CoherenceConfig{Caches: n, Bug: boolKnob(s, "bug")}), nil
		},
	})

	Register(Entry{
		Name:     "link",
		Desc:     "alternating-bit link protocol over lossy channels: data-integrity conjuncts",
		Defaults: Size{"data-bits": 2, "bug": 0},
		Sizes:    []Size{{"data-bits": 1}, {"data-bits": 2}, {"data-bits": 4}},
		Build: func(s Size) (*ir.Model, error) {
			w := s["data-bits"]
			if w < 1 || w > 16 {
				return nil, fmt.Errorf("zoo: link needs 1 <= data-bits <= 16 (got %d)", w)
			}
			return models.BuildLink(models.LinkConfig{DataBits: w, Bug: boolKnob(s, "bug")}), nil
		},
	})
}
