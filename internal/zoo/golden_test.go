package zoo

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/lang"
)

var update = flag.Bool("update", false, "rewrite golden canonical-form files")

// TestGoldenRoundTrip pins the canonical serialized form of one member
// per registered family and closes the loop: IR -> canonical text ->
// lang.ParseModel -> ToIR must reproduce the IR exactly (DeepEqual).
// The committed golden files make any canonical-form drift — which
// would silently split the icid content-addressed cache — a visible
// diff.
func TestGoldenRoundTrip(t *testing.T) {
	members := []struct {
		entry string
		size  Size
	}{
		{"fifo", Size{"width": 3, "depth": 2, "bound": 5}},
		{"network", Size{"procs": 2}},
		{"filter", Size{"depth": 2, "width": 1}},
		{"pipeline", Size{"regs": 2, "width": 1}},
		{"coherence", Size{"caches": 2}},
		{"link", Size{"data-bits": 1}},
		{"elevator", Size{"floors": 3}},
		{"traffic", Size{"roads": 2}},
		{"protostack", Size{"layers": 2}},
		{"fsm/turnstile", Size{}},
		{"fsm/door", Size{}},
	}
	for _, mb := range members {
		mb := mb
		t.Run(mb.entry, func(t *testing.T) {
			mo, err := Build(mb.entry, mb.size)
			if err != nil {
				t.Fatal(err)
			}
			canon := mo.Format()

			golden := filepath.Join("testdata", "golden", filepath.Base(mb.entry)+".canon")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(canon), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if canon != string(want) {
				t.Errorf("canonical form drifted from %s (regenerate with -update if intended)", golden)
			}

			// Round trip through the text frontend.
			parsed, err := lang.ParseModel(canon)
			if err != nil {
				t.Fatalf("canonical text does not parse: %v", err)
			}
			back, err := parsed.ToIR(mo.Name)
			if err != nil {
				t.Fatalf("canonical text does not lower: %v", err)
			}
			if !reflect.DeepEqual(mo, back) {
				t.Fatal("IR -> canon -> ParseModel -> IR is not the identity")
			}

			// And the canonical form is a fixed point of lang.Canon, so
			// a zoo-built model and its text submission share one icid
			// cache key.
			again, err := lang.Canon(canon)
			if err != nil {
				t.Fatal(err)
			}
			if again != canon {
				t.Error("lang.Canon is not a fixed point on the canonical form")
			}
		})
	}
}
