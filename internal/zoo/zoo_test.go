package zoo

import (
	"testing"

	"repro/internal/bdd"
	"repro/internal/resource"
	"repro/internal/verify"
)

// TestSmoke is the registry acceptance gate (mirrored by the CI
// zoo-smoke job): every registered entry must build at its smallest
// size, instantiate on both manager kinds, and produce an agreeing
// definite verdict from two engines under a small budget.
func TestSmoke(t *testing.T) {
	if len(Names()) < 10 {
		t.Fatalf("registry has %d entries, want >= 10", len(Names()))
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			e, ok := Get(name)
			if !ok {
				t.Fatal("entry vanished")
			}
			mo, err := e.Model(e.Sizes[0])
			if err != nil {
				t.Fatalf("build at smallest size: %v", err)
			}

			var first verify.Outcome
			haveFirst := false
			for _, mode := range []string{"perworker", "shared"} {
				var m *bdd.Manager
				if mode == "shared" {
					m = bdd.NewShared(2, 14)
				} else {
					m = bdd.New()
				}
				prob, err := mo.Instantiate(m)
				if err != nil {
					t.Fatalf("%s: instantiate: %v", mode, err)
				}
				for _, method := range []verify.Method{verify.Forward, verify.XICI} {
					res := verify.Run(prob, method, verify.Options{
						Budget: resource.Budget{NodeLimit: 4 << 20},
					})
					if res.Outcome != verify.Verified && res.Outcome != verify.Violated {
						t.Fatalf("%s/%s: indefinite outcome %v (%s)", mode, method, res.Outcome, res.Cause())
					}
					if !haveFirst {
						first, haveFirst = res.Outcome, true
					} else if res.Outcome != first {
						t.Fatalf("%s/%s: outcome %v disagrees with %v", mode, method, res.Outcome, first)
					}
				}
			}
		})
	}
}

// TestBuggedVariantsViolate pins the seeded bug of each new family:
// a registered bug that stops violating has gone dead.
func TestBuggedVariantsViolate(t *testing.T) {
	cases := []struct {
		name string
		size Size
	}{
		{"elevator", Size{"floors": 2, "bug": 1}},
		{"traffic", Size{"roads": 2, "bug": 1}},
		{"protostack", Size{"layers": 2, "bug": 1}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			mo, err := Build(tc.name, tc.size)
			if err != nil {
				t.Fatal(err)
			}
			prob := mo.MustInstantiate(bdd.New())
			res := verify.Run(prob, verify.Forward, verify.Options{WantTrace: true})
			if res.Outcome != verify.Violated {
				t.Fatalf("bugged %s: outcome %v, want Violated", tc.name, res.Outcome)
			}
			gl := prob.GoodList
			if len(gl) == 0 {
				gl = []bdd.Ref{prob.Good}
			}
			if err := res.Trace.Validate(prob.Machine, gl); err != nil {
				t.Fatalf("bugged %s: trace does not replay: %v", tc.name, err)
			}
		})
	}
}

// TestUnknownParameterRejected checks the user-facing size validation
// (the icid builtin endpoint path).
func TestUnknownParameterRejected(t *testing.T) {
	if _, err := Build("fifo", Size{"depht": 3}); err == nil {
		t.Fatal("misspelled parameter accepted")
	}
	if _, err := Build("no-such-model", nil); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := Build("fifo", Size{"depth": -1}); err == nil {
		t.Fatal("invalid size accepted")
	}
}
