package bench

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestCanceledContextAbortsParallelGrid: a canceled context must make
// the parallel grid return promptly with every cell Exhausted on the
// typed cancellation error, draining the worker pool without leaking
// goroutines (run under -race in CI).
func TestCanceledContextAbortsParallelGrid(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	tab := smallTable()
	var out strings.Builder
	start := time.Now()
	results := tab.RunParallel(ctx, &out, Budget{NodeLimit: 5_000_000, Timeout: time.Minute}, 4)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("grid did not abort promptly: %v", elapsed)
	}

	if len(results) != len(tab.Cells) {
		t.Fatalf("got %d results, want %d", len(results), len(tab.Cells))
	}
	for _, cr := range results {
		if cr.Result.Outcome.String() != "exhausted" {
			t.Fatalf("%s/%s: outcome %v, want exhausted",
				cr.Cell.Group, cr.Cell.Method, cr.Result.Outcome)
		}
		if !errors.Is(cr.Result.Err, context.Canceled) {
			t.Fatalf("%s/%s: Err = %v, want context.Canceled",
				cr.Cell.Group, cr.Cell.Method, cr.Result.Err)
		}
		if cr.Result.Cause() != "canceled" {
			t.Fatalf("cause %q, want canceled", cr.Result.Cause())
		}
	}
	if !strings.Contains(out.String(), "Canceled.") {
		t.Fatalf("rendered table does not mark canceled rows:\n%s", out.String())
	}

	// The pool's goroutines must have drained.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutine leak: %d running, %d before the grid", n, before)
	}
}

// TestMidGridCancellation: cancellation landing while cells are in
// flight still drains the grid; canceled cells carry the typed error,
// finished cells keep their verdicts.
func TestMidGridCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tab := smallTable()
	var out strings.Builder
	done := make(chan []CellResult, 1)
	go func() {
		done <- tab.RunParallel(ctx, &out, Budget{NodeLimit: 5_000_000, Timeout: time.Minute}, 2)
	}()
	cancel()
	select {
	case results := <-done:
		for _, cr := range results {
			if cr.Result.Outcome.String() == "exhausted" && !errors.Is(cr.Result.Err, context.Canceled) {
				t.Fatalf("%s/%s exhausted without cancel error: %v",
					cr.Cell.Group, cr.Cell.Method, cr.Result.Err)
			}
		}
	case <-time.After(30 * time.Second):
		t.Fatal("grid did not drain after cancellation")
	}
}
