// Package bench regenerates the paper's experimental tables. Each table
// is a grid of (model size × verification method) cells; every cell runs
// on a fresh BDD manager under a resource budget calibrated to play the
// role of the paper's limits ("Exceeded 60MB", "Exceeded 40 minutes" on
// a Sun 4/75).
//
// Absolute numbers are not expected to match a 1990s workstation; the
// shape is: which methods complete each row, the relative node counts of
// the iterates, and the per-conjunct size profiles of the implicit
// methods.
package bench

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/bdd"
	"repro/internal/par"
	"repro/internal/resource"
	"repro/internal/verify"
)

// Budget is the per-cell resource bound — the unified resource.Budget.
// The grids set NodeLimit (at ~20 bytes per node, 3M nodes is the analog
// of the paper's 60MB ceiling) and Timeout (the paper's 40 minutes,
// scaled to modern hardware); the runners thread the caller's context
// through it so every cell is individually cancelable.
type Budget = resource.Budget

// DefaultBudget is the budget used by cmd/icibench.
var DefaultBudget = Budget{NodeLimit: 3_000_000, Timeout: 60 * time.Second}

// QuickBudget keeps `go test -bench` runs short.
var QuickBudget = Budget{NodeLimit: 1_000_000, Timeout: 10 * time.Second}

// Cell is one table entry: a model constructor and a method.
type Cell struct {
	Group  string // e.g. "8-Bit Wide Typed FIFO Buffer, depth 5"
	Method verify.Method
	Label  string // row label override (defaults to the method name)
	Build  func(m *bdd.Manager) verify.Problem
	Opt    verify.Options // method-specific options (core policy etc.)
}

// RowLabel is the label printed for this cell's row.
func (c Cell) RowLabel() string {
	if c.Label != "" {
		return c.Label
	}
	return string(c.Method)
}

// CellResult pairs a cell with its outcome and the manager-level peak.
type CellResult struct {
	Cell      Cell
	Result    verify.Result
	PeakLive  int // peak live nodes across the whole run (incl. intermediates)
	TotalVars int
}

// RunCell executes one cell on a fresh manager under the budget.
// Canceling ctx aborts the cell's BDD operations promptly (the
// manager's strided budget checks), yielding an Exhausted result whose
// Err matches context.Canceled.
//
// A zero cell budget field inherits the grid default; to run a cell
// with NO bound at all, set the field to resource.Unlimited — the
// sentinel survives the inheritance step and is then normalized to the
// truly unbounded zero value.
func RunCell(ctx context.Context, c Cell, budget Budget) CellResult {
	// A cell that opts into the shared-memory parallel path gets a
	// concurrent-mode manager; verify.RunContext then routes pair scoring
	// through the zero-hand-off shared scorer. Everything downstream is
	// manager-agnostic.
	var m *bdd.Manager
	if c.Opt.SharedManager {
		m = bdd.NewShared(c.Opt.Workers, 20)
	} else {
		m = bdd.NewWithSize(1<<16, 20)
	}
	p := c.Build(m)
	opt := c.Opt
	if opt.Budget.NodeLimit == 0 {
		opt.Budget.NodeLimit = budget.NodeLimit
	}
	if opt.Budget.Timeout == 0 {
		opt.Budget.Timeout = budget.Timeout
	}
	opt.Budget = opt.Budget.Norm()
	res := verify.RunContext(ctx, p, c.Method, opt)
	return CellResult{Cell: c, Result: res, PeakLive: m.PeakNodes(), TotalVars: m.NumVars()}
}

// Table is an ordered list of cells with a title.
type Table struct {
	Title string
	Cells []Cell

	// ShowEffort appends the observability counters (termination-test
	// and greedy-evaluation effort, per-phase times) to each text row.
	// The icibench -effort flag sets it on every table it runs.
	ShowEffort bool
}

// rowWriter renders results in table order: title, a group header
// whenever the group changes, then one row per cell. Both the streaming
// sequential runner and the parallel runner emit through it, so the two
// produce byte-identical tables.
type rowWriter struct {
	w          io.Writer
	group      string
	showEffort bool
}

func newRowWriter(w io.Writer, title string, showEffort bool) *rowWriter {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	return &rowWriter{w: w, showEffort: showEffort}
}

func (rw *rowWriter) row(cr CellResult) {
	if cr.Cell.Group != rw.group {
		rw.group = cr.Cell.Group
		fmt.Fprintf(rw.w, "\nExample: %s\n", rw.group)
		fmt.Fprintf(rw.w, "%-5s %-9s %-5s %-10s %s\n", "Meth.", "Time", "Iter", "Mem", "BDD Nodes")
	}
	line := formatRow(cr)
	if rw.showEffort {
		line += effortText(cr.Result)
	}
	fmt.Fprintln(rw.w, line)
}

func (rw *rowWriter) done() { fmt.Fprintln(rw.w) }

// Filter returns the table restricted to cells whose method is in
// methods (nil or empty keeps every cell). The icibench -engines flag
// resolves to this.
func (t Table) Filter(methods []verify.Method) Table {
	if len(methods) == 0 {
		return t
	}
	keep := make(map[verify.Method]bool, len(methods))
	for _, m := range methods {
		keep[m] = true
	}
	out := Table{Title: t.Title}
	for _, c := range t.Cells {
		if keep[c.Method] {
			out.Cells = append(out.Cells, c)
		}
	}
	return out
}

// Run executes every cell and renders the paper-style rows to w,
// streaming each row as its cell finishes. Canceling ctx makes the
// remaining cells finish promptly as Exhausted/canceled.
func (t Table) Run(ctx context.Context, w io.Writer, budget Budget) []CellResult {
	rw := newRowWriter(w, t.Title, t.ShowEffort)
	results := make([]CellResult, 0, len(t.Cells))
	for _, c := range t.Cells {
		cr := RunCell(ctx, c, budget)
		rw.row(cr)
		results = append(results, cr)
	}
	rw.done()
	return results
}

// RunParallel executes the cells concurrently on the given number of
// workers (0 or negative = GOMAXPROCS) and renders the rows in table
// order once all cells have finished. Every cell owns a fresh Manager,
// so cells are independent; the rendered table and all deterministic
// result fields (outcome, iterations, node counts, memory) are identical
// to a sequential Run. Wall-clock fields can differ — concurrent cells
// contend for cores, so a grid whose budgets sit near a cell's true cost
// may tip a borderline cell into "Exceeded time budget".
//
// Each cell observes ctx through its own budget, so cancellation aborts
// in-flight cells individually and the pool drains without leaking
// goroutines.
func (t Table) RunParallel(ctx context.Context, w io.Writer, budget Budget, workers int) []CellResult {
	if workers == 1 || len(t.Cells) < 2 {
		return t.Run(ctx, w, budget)
	}
	results := make([]CellResult, len(t.Cells))
	par.NewPool(workers).ForEach(len(t.Cells), func(_, i int) {
		results[i] = RunCell(ctx, t.Cells[i], budget)
	})
	rw := newRowWriter(w, t.Title, t.ShowEffort)
	for _, cr := range results {
		rw.row(cr)
	}
	rw.done()
	return results
}

// formatRow renders one result in the paper's column layout.
func formatRow(cr CellResult) string {
	r := cr.Result
	label := cr.Cell.RowLabel()
	switch r.Outcome {
	case verify.Exhausted:
		return fmt.Sprintf("%-5s %s", label, exhaustedText(r))
	case verify.Violated:
		return fmt.Sprintf("%-5s VIOLATED at depth %d (%s)", label, r.ViolationDepth, fmtDur(r.Elapsed))
	}
	return fmt.Sprintf("%-5s %-9s %-5d %-10s %d%s",
		label, fmtDur(r.Elapsed), r.Iterations, fmtMem(r.MemBytes), r.PeakStateNodes,
		fmtProfile(r.PeakProfile))
}

// effortText renders the per-row effort suffix of ShowEffort tables:
// the exact termination test's call/split counts, the greedy
// evaluation's pair/merge counts, and the per-phase wall-time split.
// Wall times vary run to run; the counters are deterministic.
func effortText(r verify.Result) string {
	ph := r.PhaseDurations
	return fmt.Sprintf("  [taut=%d splits=%d pairs=%d merges=%d | img=%.2fs pol=%.2fs term=%.2fs gc=%.2fs]",
		r.Term.TautCalls, r.Term.ShannonSplits, r.Eval.PairsScored, r.Eval.MergesApplied,
		ph[verify.PhaseImage].Seconds(), ph[verify.PhasePolicy].Seconds(),
		ph[verify.PhaseTerm].Seconds(), ph[verify.PhaseGC].Seconds())
}

// exhaustedText prefers the result's typed termination cause and falls
// back to classifying the Why string for results built elsewhere.
func exhaustedText(r verify.Result) string {
	switch r.Cause() {
	case "node-limit":
		return "Exceeded node budget."
	case "deadline":
		return "Exceeded time budget."
	case "canceled":
		return "Canceled."
	default:
		return exhaustedLabel(r.Why)
	}
}

// exhaustedLabel mirrors the paper's "Exceeded 60MB." / "Exceeded 40
// minutes." annotations.
func exhaustedLabel(why string) string {
	switch {
	case strings.Contains(why, "node limit"):
		return "Exceeded node budget."
	case strings.Contains(why, "timeout"), strings.Contains(why, "deadline"):
		return "Exceeded time budget."
	default:
		return "Exceeded " + why + "."
	}
}

func fmtDur(d time.Duration) string {
	secs := d.Seconds()
	return fmt.Sprintf("%d:%05.2f", int(secs)/60, secs-float64(int(secs)/60*60))
}

func fmtMem(bytes int) string {
	return fmt.Sprintf("%dK", (bytes+1023)/1024)
}

// fmtProfile renders the per-conjunct size breakdown: "(5 x 9 nodes)"
// when all conjuncts have equal size, "(102, 45)" otherwise, and nothing
// for monolithic (single-conjunct) iterates.
func fmtProfile(profile []int) string {
	if len(profile) < 2 {
		return ""
	}
	allEqual := true
	for _, s := range profile[1:] {
		if s != profile[0] {
			allEqual = false
			break
		}
	}
	if allEqual {
		return fmt.Sprintf(" (%d x %d nodes)", len(profile), profile[0])
	}
	parts := make([]string, len(profile))
	for i, s := range profile {
		parts[i] = fmt.Sprint(s)
	}
	return " (" + strings.Join(parts, ", ") + ")"
}
