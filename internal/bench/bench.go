// Package bench regenerates the paper's experimental tables. Each table
// is a grid of (model size × verification method) cells; every cell runs
// on a fresh BDD manager under a resource budget calibrated to play the
// role of the paper's limits ("Exceeded 60MB", "Exceeded 40 minutes" on
// a Sun 4/75).
//
// Absolute numbers are not expected to match a 1990s workstation; the
// shape is: which methods complete each row, the relative node counts of
// the iterates, and the per-conjunct size profiles of the implicit
// methods.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/bdd"
	"repro/internal/verify"
)

// Budget is the per-cell resource bound.
type Budget struct {
	// NodeLimit bounds live BDD nodes. At ~20 bytes per node, 3M nodes
	// is the analog of the paper's 60MB ceiling.
	NodeLimit int
	// Timeout is the per-cell wall-clock bound (the paper's 40 minutes,
	// scaled to modern hardware).
	Timeout time.Duration
}

// DefaultBudget is the budget used by cmd/icibench.
var DefaultBudget = Budget{NodeLimit: 3_000_000, Timeout: 60 * time.Second}

// QuickBudget keeps `go test -bench` runs short.
var QuickBudget = Budget{NodeLimit: 1_000_000, Timeout: 10 * time.Second}

// Cell is one table entry: a model constructor and a method.
type Cell struct {
	Group  string // e.g. "8-Bit Wide Typed FIFO Buffer, depth 5"
	Method verify.Method
	Label  string // row label override (defaults to the method name)
	Build  func(m *bdd.Manager) verify.Problem
	Opt    verify.Options // method-specific options (core policy etc.)
}

// RowLabel is the label printed for this cell's row.
func (c Cell) RowLabel() string {
	if c.Label != "" {
		return c.Label
	}
	return string(c.Method)
}

// CellResult pairs a cell with its outcome and the manager-level peak.
type CellResult struct {
	Cell      Cell
	Result    verify.Result
	PeakLive  int // peak live nodes across the whole run (incl. intermediates)
	TotalVars int
}

// RunCell executes one cell on a fresh manager under the budget.
func RunCell(c Cell, budget Budget) CellResult {
	m := bdd.NewWithSize(1<<16, 20)
	p := c.Build(m)
	opt := c.Opt
	if opt.NodeLimit == 0 {
		opt.NodeLimit = budget.NodeLimit
	}
	if opt.Timeout == 0 {
		opt.Timeout = budget.Timeout
	}
	res := verify.Run(p, c.Method, opt)
	return CellResult{Cell: c, Result: res, PeakLive: m.PeakNodes(), TotalVars: m.NumVars()}
}

// Table is an ordered list of cells with a title.
type Table struct {
	Title string
	Cells []Cell
}

// Run executes every cell and renders the paper-style rows to w.
func (t Table) Run(w io.Writer, budget Budget) []CellResult {
	fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	results := make([]CellResult, 0, len(t.Cells))
	group := ""
	for _, c := range t.Cells {
		if c.Group != group {
			group = c.Group
			fmt.Fprintf(w, "\nExample: %s\n", group)
			fmt.Fprintf(w, "%-5s %-9s %-5s %-10s %s\n", "Meth.", "Time", "Iter", "Mem", "BDD Nodes")
		}
		cr := RunCell(c, budget)
		fmt.Fprintln(w, formatRow(cr))
		results = append(results, cr)
	}
	fmt.Fprintln(w)
	return results
}

// formatRow renders one result in the paper's column layout.
func formatRow(cr CellResult) string {
	r := cr.Result
	label := cr.Cell.RowLabel()
	switch r.Outcome {
	case verify.Exhausted:
		return fmt.Sprintf("%-5s %s", label, exhaustedLabel(r.Why))
	case verify.Violated:
		return fmt.Sprintf("%-5s VIOLATED at depth %d (%s)", label, r.ViolationDepth, fmtDur(r.Elapsed))
	}
	return fmt.Sprintf("%-5s %-9s %-5d %-10s %d%s",
		label, fmtDur(r.Elapsed), r.Iterations, fmtMem(r.MemBytes), r.PeakStateNodes,
		fmtProfile(r.PeakProfile))
}

// exhaustedLabel mirrors the paper's "Exceeded 60MB." / "Exceeded 40
// minutes." annotations.
func exhaustedLabel(why string) string {
	switch {
	case strings.Contains(why, "node limit"):
		return "Exceeded node budget."
	case strings.Contains(why, "timeout"), strings.Contains(why, "deadline"):
		return "Exceeded time budget."
	default:
		return "Exceeded " + why + "."
	}
}

func fmtDur(d time.Duration) string {
	secs := d.Seconds()
	return fmt.Sprintf("%d:%05.2f", int(secs)/60, secs-float64(int(secs)/60*60))
}

func fmtMem(bytes int) string {
	return fmt.Sprintf("%dK", (bytes+1023)/1024)
}

// fmtProfile renders the per-conjunct size breakdown: "(5 x 9 nodes)"
// when all conjuncts have equal size, "(102, 45)" otherwise, and nothing
// for monolithic (single-conjunct) iterates.
func fmtProfile(profile []int) string {
	if len(profile) < 2 {
		return ""
	}
	allEqual := true
	for _, s := range profile[1:] {
		if s != profile[0] {
			allEqual = false
			break
		}
	}
	if allEqual {
		return fmt.Sprintf(" (%d x %d nodes)", len(profile), profile[0])
	}
	parts := make([]string, len(profile))
	for i, s := range profile {
		parts[i] = fmt.Sprint(s)
	}
	return " (" + strings.Join(parts, ", ") + ")"
}
