package bench

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bdd"
	"repro/internal/models"
	"repro/internal/verify"
)

// smallTable is a two-group grid small enough for repeated runs.
func smallTable() Table {
	mk := func(group string, depth int, meth verify.Method) Cell {
		return Cell{
			Group:  group,
			Method: meth,
			Build: func(m *bdd.Manager) verify.Problem {
				return models.NewFIFO(m, models.DefaultFIFO(depth))
			},
		}
	}
	return Table{
		Title: "Parallel grid crosscheck",
		Cells: []Cell{
			mk("FIFO depth 3", 3, verify.Forward),
			mk("FIFO depth 3", 3, verify.Backward),
			mk("FIFO depth 3", 3, verify.XICI),
			mk("FIFO depth 4", 4, verify.Forward),
			mk("FIFO depth 4", 4, verify.XICI),
		},
	}
}

// TestRunParallelMatchesRun: the parallel grid must render the identical
// table and report identical deterministic fields for every cell.
func TestRunParallelMatchesRun(t *testing.T) {
	budget := Budget{NodeLimit: 500_000, Timeout: 30 * time.Second}
	tab := smallTable()

	var seqOut, parOut strings.Builder
	seq := tab.Run(context.Background(), &seqOut, budget)
	parl := tab.RunParallel(context.Background(), &parOut, budget, 4)

	if len(parl) != len(seq) {
		t.Fatalf("row count %d != %d", len(parl), len(seq))
	}
	for i := range seq {
		s, p := seq[i], parl[i]
		if p.Cell.Group != s.Cell.Group || p.Cell.Method != s.Cell.Method {
			t.Fatalf("row %d reordered: %s/%s vs %s/%s",
				i, p.Cell.Group, p.Cell.Method, s.Cell.Group, s.Cell.Method)
		}
		if p.Result.Outcome != s.Result.Outcome || p.Result.Why != s.Result.Why {
			t.Errorf("row %d outcome %v (%s) != %v (%s)",
				i, p.Result.Outcome, p.Result.Why, s.Result.Outcome, s.Result.Why)
		}
		if p.Result.Iterations != s.Result.Iterations {
			t.Errorf("row %d iterations %d != %d", i, p.Result.Iterations, s.Result.Iterations)
		}
		if p.Result.PeakStateNodes != s.Result.PeakStateNodes {
			t.Errorf("row %d peak nodes %d != %d", i, p.Result.PeakStateNodes, s.Result.PeakStateNodes)
		}
		if p.Result.MemBytes != s.Result.MemBytes {
			t.Errorf("row %d mem %d != %d", i, p.Result.MemBytes, s.Result.MemBytes)
		}
		if p.PeakLive != s.PeakLive || p.TotalVars != s.TotalVars {
			t.Errorf("row %d manager stats (%d,%d) != (%d,%d)",
				i, p.PeakLive, p.TotalVars, s.PeakLive, s.TotalVars)
		}
	}

	// Rendered tables are byte-identical except for the wall-time and
	// memory columns; compare structure line by line, masking those.
	seqLines := strings.Split(seqOut.String(), "\n")
	parLines := strings.Split(parOut.String(), "\n")
	if len(parLines) != len(seqLines) {
		t.Fatalf("rendered line count %d != %d", len(parLines), len(seqLines))
	}
	for i := range seqLines {
		if maskTimes(parLines[i]) != maskTimes(seqLines[i]) {
			t.Errorf("line %d differs:\n  seq: %q\n  par: %q", i, seqLines[i], parLines[i])
		}
	}
}

// maskTimes blanks the m:ss.cc wall-time column of a rendered row.
func maskTimes(line string) string {
	fields := strings.Fields(line)
	for i, f := range fields {
		if len(f) >= 7 && f[1] == ':' && strings.Count(f, ".") == 1 {
			fields[i] = "TIME"
		}
	}
	return strings.Join(fields, " ")
}

// TestRunParallelDegenerate: one worker or one cell falls back to the
// streaming sequential path.
func TestRunParallelDegenerate(t *testing.T) {
	budget := Budget{NodeLimit: 500_000, Timeout: 30 * time.Second}
	tab := smallTable()
	tab.Cells = tab.Cells[:1]
	var out strings.Builder
	rs := tab.RunParallel(context.Background(), &out, budget, 8)
	if len(rs) != 1 || rs[0].Result.Outcome != verify.Verified {
		t.Fatalf("single-cell parallel run: %+v", rs)
	}
	if !strings.Contains(out.String(), "Example: FIFO depth 3") {
		t.Fatal("group header missing")
	}
}

// TestReportRoundTrip: the -json document survives a marshal/unmarshal
// round trip with its deterministic fields intact.
func TestReportRoundTrip(t *testing.T) {
	budget := Budget{NodeLimit: 500_000, Timeout: 30 * time.Second}
	tab := smallTable()
	var sink strings.Builder
	results := tab.Run(context.Background(), &sink, budget)

	rep := &Report{Quick: true, Workers: 2}
	rep.Add(tab.Title, 1500*time.Millisecond, budget, results)
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.Write(path); err != nil {
		t.Fatalf("Write: %v", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	var got Report
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Schema != ReportSchema {
		t.Fatalf("schema %q, want %q", got.Schema, ReportSchema)
	}
	if !got.Quick || got.Workers != 2 {
		t.Fatalf("flags lost: %+v", got)
	}
	if len(got.Tables) != 1 || got.Tables[0].Title != tab.Title {
		t.Fatalf("tables lost: %+v", got.Tables)
	}
	cells := got.Tables[0].Cells
	if len(cells) != len(results) {
		t.Fatalf("cell count %d != %d", len(cells), len(results))
	}
	for i, c := range cells {
		want := NewCellReport(results[i])
		if c.Group != want.Group || c.Method != want.Method || c.Label != want.Label ||
			c.Outcome != want.Outcome || c.Iterations != want.Iterations ||
			c.PeakStateNodes != want.PeakStateNodes || c.PeakLiveNodes != want.PeakLiveNodes ||
			c.TotalVars != want.TotalVars || c.MemBytes != want.MemBytes {
			t.Fatalf("cell %d round trip:\n got %+v\nwant %+v", i, c, want)
		}
		if c.Outcome != "verified" {
			t.Fatalf("cell %d outcome %q", i, c.Outcome)
		}
	}
}

// TestNewCellReportViolation: violation depth only appears on violations.
func TestNewCellReportViolation(t *testing.T) {
	cell := Cell{
		Group:  "buggy FIFO",
		Method: verify.Forward,
		Build: func(m *bdd.Manager) verify.Problem {
			cfg := models.DefaultFIFO(3)
			cfg.Bug = true
			return models.NewFIFO(m, cfg)
		},
	}
	cr := RunCell(context.Background(), cell, Budget{NodeLimit: 500_000, Timeout: 30 * time.Second})
	if cr.Result.Outcome != verify.Violated {
		t.Fatalf("bug model outcome %v (%s)", cr.Result.Outcome, cr.Result.Why)
	}
	rep := NewCellReport(cr)
	if rep.Outcome != "violated" || rep.ViolationDepth != cr.Result.ViolationDepth || rep.ViolationDepth == 0 {
		t.Fatalf("violation report: %+v", rep)
	}
}
