package bench

import (
	"encoding/json"
	"os"
	"time"

	"repro/internal/verify"
)

// Machine-readable bench output. cmd/icibench -json writes one Report
// covering every table it ran; the schema is documented in
// EXPERIMENTS.md under "Machine-readable output".

// ReportSchema identifies the JSON layout; bump on breaking changes.
// v2 added the per-table budget and the per-cell typed termination
// cause; v3 added the always-present per-cell "stats" block (effort
// counters, phase times, size trajectory).
const ReportSchema = "icibench/v3"

// Report is the top-level -json document.
type Report struct {
	Schema    string        `json:"schema"`
	Generated string        `json:"generated,omitempty"` // RFC 3339
	Quick     bool          `json:"quick"`
	Workers   int           `json:"workers"` // 0 = sequential grid
	Tables    []TableReport `json:"tables"`
}

// TableReport is one table's cells plus its total wall time and the
// per-cell resource budget the grid ran under.
type TableReport struct {
	Title          string       `json:"title"`
	Elapsed        float64      `json:"elapsed_seconds"`
	NodeLimit      int          `json:"node_limit"`
	TimeoutSeconds float64      `json:"timeout_seconds"`
	Cells          []CellReport `json:"cells"`
}

// CellReport flattens one CellResult. Wall-clock fields vary run to
// run; everything else is deterministic for a fixed model and budget.
type CellReport struct {
	Group          string  `json:"group"`
	Method         string  `json:"method"`
	Label          string  `json:"label"`
	Outcome        string  `json:"outcome"`
	Cause          string  `json:"cause,omitempty"` // typed termination cause for exhausted rows
	Why            string  `json:"why,omitempty"`
	Iterations     int     `json:"iterations"`
	PeakStateNodes int     `json:"peak_state_nodes"`
	PeakProfile    []int   `json:"peak_profile,omitempty"`
	PeakLiveNodes  int     `json:"peak_live_nodes"`
	TotalVars      int     `json:"total_vars"`
	MemBytes       int     `json:"mem_bytes"`
	WallSeconds    float64 `json:"wall_seconds"`
	ViolationDepth int     `json:"violation_depth,omitempty"`

	// Stats is the schema-v3 effort block. It is always present (not a
	// pointer), so consumers can rely on the key existing; the *_seconds
	// fields vary run to run, everything else is deterministic for a
	// fixed model, budget, and option set.
	Stats CellStats `json:"stats"`
}

// CellStats flattens the run's observability counters: the Section
// III.B exact termination test (taut_calls .. step_resolved), the
// Section III.A greedy evaluation (pairs_scored .. rounds), the
// per-phase wall-time split, and the iterate size trajectory.
type CellStats struct {
	TautCalls      int     `json:"taut_calls"`
	ShannonSplits  int     `json:"shannon_splits"`
	MaxSplitDepth  int     `json:"max_split_depth"`
	StepResolved   [3]int  `json:"step_resolved"`
	PairsScored    int     `json:"pairs_scored"`
	MergesApplied  int     `json:"merges_applied"`
	BudgetOverflow int     `json:"budget_overflow"`
	Rounds         int     `json:"rounds"`
	ImageSeconds   float64 `json:"image_seconds"`
	PolicySeconds  float64 `json:"policy_seconds"`
	TermSeconds    float64 `json:"term_seconds"`
	GCSeconds      float64 `json:"gc_seconds"`
	SizeTrajectory []int   `json:"size_trajectory,omitempty"`
}

// NewCellStats extracts the effort block from a result.
func NewCellStats(r verify.Result) CellStats {
	ph := r.PhaseDurations
	return CellStats{
		TautCalls:      r.Term.TautCalls,
		ShannonSplits:  r.Term.ShannonSplits,
		MaxSplitDepth:  r.Term.MaxSplitDepth,
		StepResolved:   r.Term.StepResolved,
		PairsScored:    r.Eval.PairsScored,
		MergesApplied:  r.Eval.MergesApplied,
		BudgetOverflow: r.Eval.BudgetOverflow,
		Rounds:         r.Eval.Rounds,
		ImageSeconds:   ph[verify.PhaseImage].Seconds(),
		PolicySeconds:  ph[verify.PhasePolicy].Seconds(),
		TermSeconds:    ph[verify.PhaseTerm].Seconds(),
		GCSeconds:      ph[verify.PhaseGC].Seconds(),
		SizeTrajectory: r.SizeTrajectory,
	}
}

// NewCellReport converts a run result to its JSON form.
func NewCellReport(cr CellResult) CellReport {
	r := cr.Result
	out := CellReport{
		Group:          cr.Cell.Group,
		Method:         string(cr.Cell.Method),
		Label:          cr.Cell.RowLabel(),
		Outcome:        r.Outcome.String(),
		Cause:          r.Cause(),
		Why:            r.Why,
		Iterations:     r.Iterations,
		PeakStateNodes: r.PeakStateNodes,
		PeakProfile:    r.PeakProfile,
		PeakLiveNodes:  cr.PeakLive,
		TotalVars:      cr.TotalVars,
		MemBytes:       r.MemBytes,
		WallSeconds:    r.Elapsed.Seconds(),
		Stats:          NewCellStats(r),
	}
	if r.Outcome == verify.Violated {
		out.ViolationDepth = r.ViolationDepth
	}
	return out
}

// Add appends one finished table to the report.
func (r *Report) Add(title string, elapsed time.Duration, budget Budget, results []CellResult) {
	tr := TableReport{
		Title:          title,
		Elapsed:        elapsed.Seconds(),
		NodeLimit:      budget.NodeLimit,
		TimeoutSeconds: budget.Timeout.Seconds(),
		Cells:          make([]CellReport, 0, len(results)),
	}
	for _, cr := range results {
		tr.Cells = append(tr.Cells, NewCellReport(cr))
	}
	r.Tables = append(r.Tables, tr)
}

// Write marshals the report (indented, trailing newline) to path.
func (r *Report) Write(path string) error {
	if r.Schema == "" {
		r.Schema = ReportSchema
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
