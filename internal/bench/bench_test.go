package bench

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/bdd"
	"repro/internal/models"
	"repro/internal/resource"
	"repro/internal/verify"
)

func TestFmtProfile(t *testing.T) {
	cases := []struct {
		in   []int
		want string
	}{
		{nil, ""},
		{[]int{5}, ""},
		{[]int{9, 9, 9}, " (3 x 9 nodes)"},
		{[]int{102, 45}, " (102, 45)"},
		{[]int{390, 169, 81}, " (390, 169, 81)"},
	}
	for _, c := range cases {
		if got := fmtProfile(c.in); got != c.want {
			t.Fatalf("fmtProfile(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFmtDurAndMem(t *testing.T) {
	if got := fmtDur(83*time.Second + 450*time.Millisecond); got != "1:23.45" {
		t.Fatalf("fmtDur = %q", got)
	}
	if got := fmtDur(30 * time.Millisecond); got != "0:00.03" {
		t.Fatalf("fmtDur = %q", got)
	}
	if got := fmtMem(2048); got != "2K" {
		t.Fatalf("fmtMem = %q", got)
	}
	if got := fmtMem(1); got != "1K" {
		t.Fatalf("fmtMem rounds up: %q", got)
	}
}

func TestExhaustedLabels(t *testing.T) {
	if got := exhaustedLabel("bdd: node limit exceeded (x)"); got != "Exceeded node budget." {
		t.Fatalf("node label = %q", got)
	}
	if got := exhaustedLabel("timeout 5s exceeded"); got != "Exceeded time budget." {
		t.Fatalf("timeout label = %q", got)
	}
	if got := exhaustedLabel("bdd: operation deadline exceeded"); got != "Exceeded time budget." {
		t.Fatalf("deadline label = %q", got)
	}
	if got := exhaustedLabel("iteration bound 5 reached"); !strings.Contains(got, "iteration bound") {
		t.Fatalf("generic label = %q", got)
	}
}

func TestRunCellBudgets(t *testing.T) {
	cell := Cell{
		Group:  "test",
		Method: verify.XICI,
		Build: func(m *bdd.Manager) verify.Problem {
			return models.NewFIFO(m, models.DefaultFIFO(3))
		},
	}
	cr := RunCell(context.Background(), cell, Budget{NodeLimit: 500_000, Timeout: 30 * time.Second})
	if cr.Result.Outcome != verify.Verified {
		t.Fatalf("outcome %v (%s)", cr.Result.Outcome, cr.Result.Why)
	}
	if cr.PeakLive <= 0 || cr.TotalVars <= 0 {
		t.Fatal("missing manager stats")
	}
	// A hopeless budget must yield an Exceeded row, not an error.
	cr2 := RunCell(context.Background(), cell, Budget{NodeLimit: 50, Timeout: time.Second})
	if cr2.Result.Outcome != verify.Exhausted {
		t.Fatalf("tiny budget outcome %v", cr2.Result.Outcome)
	}
	if !strings.Contains(formatRow(cr2), "Exceeded") {
		t.Fatalf("exhausted row rendering: %q", formatRow(cr2))
	}
}

func TestRunCellUnlimitedSentinel(t *testing.T) {
	cell := Cell{
		Group:  "test",
		Method: verify.XICI,
		Build: func(m *bdd.Manager) verify.Problem {
			return models.NewFIFO(m, models.DefaultFIFO(3))
		},
	}
	// Control: under a hopeless grid node limit the cell exhausts.
	grid := Budget{NodeLimit: 50, Timeout: 30 * time.Second}
	if cr := RunCell(context.Background(), cell, grid); cr.Result.Outcome != verify.Exhausted {
		t.Fatalf("control cell outcome %v, want exhausted", cr.Result.Outcome)
	}
	// The sentinel must survive the zero-inherits-grid-default step and
	// lift the limit entirely: the same cell now verifies.
	cell.Opt.Budget.NodeLimit = resource.Unlimited
	cr := RunCell(context.Background(), cell, grid)
	if cr.Result.Outcome != verify.Verified {
		t.Fatalf("unlimited cell outcome %v (%s)", cr.Result.Outcome, cr.Result.Why)
	}
	// Same story for the time axis.
	cell.Opt.Budget = Budget{Timeout: resource.Unlimited}
	cr = RunCell(context.Background(), cell, Budget{NodeLimit: 500_000, Timeout: time.Nanosecond})
	if cr.Result.Outcome != verify.Verified {
		t.Fatalf("unlimited-timeout cell outcome %v (%s)", cr.Result.Outcome, cr.Result.Why)
	}
}

func TestCellReportStatsBlock(t *testing.T) {
	cell := Cell{
		Group:  "test",
		Method: verify.XICI,
		Build: func(m *bdd.Manager) verify.Problem {
			return models.NewFIFO(m, models.DefaultFIFO(3))
		},
	}
	cr := RunCell(context.Background(), cell, Budget{NodeLimit: 500_000, Timeout: 30 * time.Second})
	var rep Report
	rep.Add("t", time.Second, DefaultBudget, []CellResult{cr})
	rep.Schema = ReportSchema

	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	// The v3 contract: schema tag, an always-present stats key, and a
	// live XICI cell reports non-zero exact-termination effort.
	for _, want := range []string{`"schema":"icibench/v3"`, `"stats":{`, `"taut_calls"`, `"step_resolved"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("report JSON missing %s:\n%s", want, data)
		}
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	st := back.Tables[0].Cells[0].Stats
	if st.TautCalls == 0 {
		t.Error("XICI cell reports zero taut_calls")
	}
	if st.StepResolved[0]+st.StepResolved[1]+st.StepResolved[2]+st.ShannonSplits != st.TautCalls {
		t.Errorf("stats block breaks the bucket invariant: %+v", st)
	}
	if st.PairsScored == 0 || st.Rounds == 0 {
		t.Errorf("XICI cell reports no evaluation effort: %+v", st)
	}
	if len(st.SizeTrajectory) == 0 {
		t.Error("stats block lost the size trajectory")
	}
}

func TestEffortText(t *testing.T) {
	var r verify.Result
	r.Term.TautCalls = 7
	r.Term.ShannonSplits = 2
	r.Eval.PairsScored = 30
	r.Eval.MergesApplied = 4
	got := effortText(r)
	for _, want := range []string{"taut=7", "splits=2", "pairs=30", "merges=4", "img=", "gc="} {
		if !strings.Contains(got, want) {
			t.Fatalf("effortText %q missing %q", got, want)
		}
	}
}

func TestRowLabelOverride(t *testing.T) {
	c := Cell{Method: verify.XICI}
	if c.RowLabel() != "XICI" {
		t.Fatal("default row label")
	}
	c.Label = "XICI*"
	if c.RowLabel() != "XICI*" {
		t.Fatal("label override")
	}
}

func TestQuickTablesRunGreen(t *testing.T) {
	if testing.Short() {
		t.Skip("quick tables still take a few seconds")
	}
	var sb strings.Builder
	for _, tb := range []func() (Table, Budget){
		func() (Table, Budget) { return Table1(true) },
		func() (Table, Budget) { return Table2(true) },
		func() (Table, Budget) { return Table3(true, true) },
	} {
		tab, budget := tb()
		results := tab.Run(context.Background(), &sb, budget)
		if len(results) == 0 {
			t.Fatalf("%s produced no rows", tab.Title)
		}
		for _, cr := range results {
			if cr.Result.Outcome == verify.Violated {
				t.Fatalf("%s %s: violated on a correct model", cr.Cell.Group, cr.Cell.RowLabel())
			}
		}
	}
	out := sb.String()
	for _, want := range []string{"Meth.", "Iter", "BDD Nodes", "FIFO", "XICI*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestFullTableDefinitions(t *testing.T) {
	// Full tables must be well-formed without running them: every cell
	// has a builder, a method, and belongs to a group.
	for _, tb := range []func() (Table, Budget){
		func() (Table, Budget) { return Table1(false) },
		func() (Table, Budget) { return Table2(false) },
		func() (Table, Budget) { return Table3(false, true) },
	} {
		tab, budget := tb()
		if budget.NodeLimit <= 0 || budget.Timeout <= 0 {
			t.Fatalf("%s has no budget", tab.Title)
		}
		if len(tab.Cells) == 0 {
			t.Fatalf("%s is empty", tab.Title)
		}
		for i, c := range tab.Cells {
			if c.Build == nil || c.Method == "" || c.Group == "" {
				t.Fatalf("%s cell %d incomplete", tab.Title, i)
			}
		}
	}
	// The assisted flag adds the user-partition group.
	with, _ := Table3(false, true)
	without, _ := Table3(false, false)
	if len(with.Cells) <= len(without.Cells) {
		t.Fatal("assisted Table 3 did not add cells")
	}
}
