package bench

import (
	"sort"
	"strings"
	"time"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/fsm"
	"repro/internal/verify"
	"repro/internal/zoo"
)

// Table and budget definitions for the paper's three tables. Within a
// row group every method runs under the identical budget; budgets differ
// across workloads only to keep total runtime sane on a laptop while
// preserving each group's complete/fail split (see EXPERIMENTS.md).
//
// Every row builds its model through the zoo registry — the same entries
// the icid builtin endpoint serves and the CI smoke job instantiates —
// so a table row, a server submission, and a fuzzer replay of the same
// (entry, size) pair are the identical IR model.

// fourMethods is the method column of most groups, in table order.
var fourMethods = []verify.Method{verify.Forward, verify.Backward, verify.ICI, verify.XICI}

// networkMethods adds the FD baseline, as in the paper's network rows.
var networkMethods = []verify.Method{verify.Forward, verify.Backward, verify.FD, verify.ICI, verify.XICI}

// filterBudget: the moving-average filter needs more headroom — its
// depth-16 row legitimately uses ~10M live nodes even for XICI.
var filterBudget = Budget{NodeLimit: 12_000_000, Timeout: 3 * time.Minute}

// pipelineBudget: the pipeline groups run the backward family with
// paper-faithful functional-composition images, whose intermediate
// blowup is the phenomenon under study. 3.5M live nodes sits between the
// partitioned methods' footprint (~3M at registers=4) and the monolithic
// methods' (~4.6M), putting the crossover where the paper's Table 3 has
// it: the monolithic backward family exhausts at the 4-register machine
// while the implicit-conjunction run completes.
var pipelineBudget = Budget{NodeLimit: 3_500_000, Timeout: 2 * time.Minute}

// zooBuild resolves a registry entry at a size into a Cell build
// function. Table definitions are static, so a size the entry rejects is
// a programmer error, not a runtime condition.
func zooBuild(entry string, size zoo.Size) func(m *bdd.Manager) verify.Problem {
	return func(m *bdd.Manager) verify.Problem {
		mo, err := zoo.Build(entry, size)
		if err != nil {
			panic("bench: " + err.Error())
		}
		return mo.MustInstantiate(m)
	}
}

// fifoCells builds one FIFO row group.
func fifoCells(depth int) []Cell {
	cells := make([]Cell, 0, len(fourMethods))
	for _, meth := range fourMethods {
		cells = append(cells, Cell{
			Group:  groupLabel("8-Bit Wide Typed FIFO Buffer", "depth", depth),
			Method: meth,
			Build:  zooBuild("fifo", zoo.Size{"width": 8, "depth": depth, "bound": 128}),
		})
	}
	return cells
}

// networkCells builds one network row group.
func networkCells(procs int) []Cell {
	cells := make([]Cell, 0, len(networkMethods))
	for _, meth := range networkMethods {
		cells = append(cells, Cell{
			Group:  groupLabel("Processors Sending Messages Through Network", "processors", procs),
			Method: meth,
			Build:  zooBuild("network", zoo.Size{"procs": procs}),
		})
	}
	return cells
}

// filterCells builds one moving-average-filter row group.
func filterCells(depth int, assist bool, sampleWidth int) []Cell {
	label := groupLabel("8-Bit Wide Moving Average Filter", "depth", depth)
	size := zoo.Size{"depth": depth, "width": sampleWidth}
	if assist {
		size["assist"] = 1
	} else {
		label += " (no assisting invariants)"
	}
	cells := make([]Cell, 0, len(fourMethods))
	for _, meth := range fourMethods {
		cells = append(cells, Cell{
			Group:  label,
			Method: meth,
			Build:  zooBuild("filter", size),
		})
	}
	return cells
}

// pipelineCells builds one pipelined-processor row group. The backward
// family uses functional-composition images (the route the paper's Ever
// verifier took, and the one whose monolithic intermediate blowup the
// implicit methods exist to avoid); forward traversal uses the
// partitioned relational product it always uses.
//
// Five rows per group: the usual four methods plus "XICI*", the
// implicit-conjunction run seeded with the per-register partition and
// with greedy evaluation disabled. On this model encoding the automatic
// Figure 1 policy correctly observes that merging minimizes the SIZE of
// the iterates (every pairwise ratio is ~1), and so collapses the list —
// but the collapsed list pays the monolithic image cost. XICI* is the
// configuration that exhibits the paper's separation; see EXPERIMENTS.md
// for the full discussion.
func pipelineCells(regs, bits int, assist bool) []Cell {
	label := groupLabel("Pipelined Processor", "registers", regs) + groupLabel(",", "datapath bits", bits)
	if assist {
		label += " (user partition)"
	}
	type rowSpec struct {
		method    verify.Method
		partition bool
		noMerge   bool
	}
	rows := []rowSpec{
		{method: verify.Forward},
		{method: verify.Backward},
		{method: verify.ICI, partition: assist},
		{method: verify.XICI, partition: assist},
		{method: verify.XICI, partition: true, noMerge: true}, // XICI*
	}
	cells := make([]Cell, 0, len(rows))
	for _, row := range rows {
		row := row
		opt := verify.Options{}
		if row.noMerge {
			opt.Core = core.Options{SkipEvaluate: true}
		}
		lbl := ""
		if row.noMerge {
			lbl = "XICI*"
		}
		size := zoo.Size{"regs": regs, "width": bits}
		if row.partition {
			size["assist"] = 1
		}
		build := zooBuild("pipeline", size)
		cells = append(cells, Cell{
			Group:  label,
			Method: row.method,
			Label:  lbl,
			Opt:    opt,
			Build: func(mgr *bdd.Manager) verify.Problem {
				p := build(mgr)
				if row.method != verify.Forward {
					p.Machine.PreImageMode = fsm.PreCompose
				}
				return p
			},
		})
	}
	return cells
}

func groupLabel(prefix, what string, n int) string {
	return prefix + " " + what + "=" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Table1 is "Performance vs Previous Methods": FIFO, network, and the
// moving-average filter WITH user-supplied assisting invariants.
// quick mode shrinks sizes so `go test -bench` finishes promptly.
func Table1(quick bool) (Table, Budget) {
	if quick {
		t := Table{Title: "Table 1 (quick): Performance vs Previous Methods"}
		t.Cells = append(t.Cells, fifoCells(3)...)
		t.Cells = append(t.Cells, networkCells(2)...)
		t.Cells = append(t.Cells, filterCells(4, true, 4)...)
		return t, QuickBudget
	}
	t := Table{Title: "Table 1: Performance vs Previous Methods"}
	t.Cells = append(t.Cells, fifoCells(5)...)
	t.Cells = append(t.Cells, fifoCells(10)...)
	t.Cells = append(t.Cells, networkCells(4)...)
	t.Cells = append(t.Cells, networkCells(7)...)
	for _, depth := range []int{4, 8, 16} {
		cells := filterCells(depth, true, 8)
		for i := range cells {
			cells[i].Opt.Budget.NodeLimit = filterBudget.NodeLimit
			cells[i].Opt.Budget.Timeout = filterBudget.Timeout
		}
		t.Cells = append(t.Cells, cells...)
	}
	return t, DefaultBudget
}

// Table2 is the moving-average filter WITHOUT assisting invariants: the
// property is the single output equality and only XICI is expected to
// complete the larger depths, deriving the invariants automatically.
func Table2(quick bool) (Table, Budget) {
	if quick {
		t := Table{Title: "Table 2 (quick): Filter without Assisting Invariants"}
		t.Cells = append(t.Cells, filterCells(4, false, 4)...)
		return t, QuickBudget
	}
	t := Table{Title: "Table 2: Moving Average Filter without Assisting Invariants"}
	for _, depth := range []int{4, 8, 16} {
		t.Cells = append(t.Cells, filterCells(depth, false, 8)...)
	}
	return t, filterBudget
}

// Table3 is the pipelined-processor equivalence grid, plus the paper's
// closing hand-assisted comparison point.
func Table3(quick, assisted bool) (Table, Budget) {
	if quick {
		t := Table{Title: "Table 3 (quick): Pipelined Processor"}
		t.Cells = append(t.Cells, pipelineCells(2, 1, false)...)
		return t, QuickBudget
	}
	t := Table{Title: "Table 3: Pipelined Processor"}
	for _, cfg := range [][2]int{{2, 1}, {2, 2}, {2, 3}, {4, 1}} {
		t.Cells = append(t.Cells, pipelineCells(cfg[0], cfg[1], false)...)
	}
	if assisted {
		t.Cells = append(t.Cells, pipelineCells(2, 3, true)...)
	}
	return t, pipelineBudget
}

// ZooTable is the model-zoo grid: every registered entry — the paper
// families, the new parameterized families, and the imported `.fsm`
// machines — at its listed sizes (quick: smallest size only), under
// Forward, XICI, and PDR. Machines whose property is violated by design
// (the seeded-bug `.fsm` imports) print as VIOLATED rows; icibench's
// exit code reports that faithfully. PDR rows on wide-datapath entries
// (the filter family) are expected to exhaust the cell budget — cube-
// wise blocking does not converge there; the typed deadline cause keeps
// those rows honest rather than hiding the weakness.
func ZooTable(quick bool) (Table, Budget) {
	t := Table{Title: "Model Zoo: every registry entry"}
	for _, name := range zoo.Names() {
		e, _ := zoo.Get(name)
		sizes := e.Sizes
		if quick {
			sizes = sizes[:1]
		}
		for _, size := range sizes {
			for _, meth := range []verify.Method{verify.Forward, verify.XICI, verify.PDR} {
				t.Cells = append(t.Cells, Cell{
					Group:  "zoo/" + name + sizeLabel(size),
					Method: meth,
					Build:  zooBuild(name, size),
				})
			}
		}
	}
	if quick {
		t.Title = "Model Zoo (quick): every registry entry at its smallest size"
		return t, QuickBudget
	}
	return t, DefaultBudget
}

// sizeLabel renders a size map deterministically (sorted keys).
func sizeLabel(s zoo.Size) string {
	if len(s) == 0 {
		return ""
	}
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + itoa(s[k])
	}
	return " " + strings.Join(parts, " ")
}
