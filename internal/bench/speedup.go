package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/bdd"
	"repro/internal/models"
	"repro/internal/verify"
)

// The parallel-vs-sequential speedup grid behind icibench -speedup: each
// cell runs the XICI engine on one model three ways — sequential,
// per-worker-manager parallel scoring (the Transfer-based path), and
// shared-memory concurrent scoring on one bdd.NewShared manager — and
// records the wall-clock ratios plus a verdict/iteration-count agreement
// check. CI commits the JSON as BENCH_<date>.json so speedups are
// tracked alongside the code they measure.

// SpeedupSchema identifies the -speedup JSON layout.
const SpeedupSchema = "icibench-speedup/v1"

// SpeedupCell is one model configuration in the speedup grid.
type SpeedupCell struct {
	Group string
	Build func(m *bdd.Manager) verify.Problem
}

// SpeedupCells is the FIFO/filter grid measured by icibench -speedup.
// XICI pair scoring dominates these runs, which is the phase the
// concurrent manager parallelizes; quick mode shrinks the sizes.
func SpeedupCells(quick bool) []SpeedupCell {
	if quick {
		return []SpeedupCell{
			{Group: "FIFO depth=3", Build: func(m *bdd.Manager) verify.Problem {
				return models.NewFIFO(m, models.DefaultFIFO(3))
			}},
			{Group: "Filter depth=4", Build: func(m *bdd.Manager) verify.Problem {
				return models.NewFilter(m, models.FilterConfig{Depth: 4, SampleWidth: 4, Assist: true})
			}},
		}
	}
	return []SpeedupCell{
		{Group: "FIFO depth=4", Build: func(m *bdd.Manager) verify.Problem {
			return models.NewFIFO(m, models.DefaultFIFO(4))
		}},
		{Group: "FIFO depth=5", Build: func(m *bdd.Manager) verify.Problem {
			return models.NewFIFO(m, models.DefaultFIFO(5))
		}},
		{Group: "Filter depth=8", Build: func(m *bdd.Manager) verify.Problem {
			return models.NewFilter(m, models.FilterConfig{Depth: 8, SampleWidth: 8, Assist: true})
		}},
		{Group: "Filter depth=16", Build: func(m *bdd.Manager) verify.Problem {
			return models.NewFilter(m, models.FilterConfig{Depth: 16, SampleWidth: 8, Assist: true})
		}},
	}
}

// SpeedupCellReport is one grid cell's measurements. The *MS fields are
// best-of-Repeats wall times; the ratios derive from them. VerdictsAgree
// asserts the determinism contract: all three configurations must report
// the same outcome and iteration count (they share the canonicity
// argument of DESIGN.md §12), so a false value is a correctness bug, not
// a performance artifact.
type SpeedupCellReport struct {
	Group             string   `json:"group"`
	Method            string   `json:"method"`
	SeqMS             float64  `json:"seq_ms"`
	PerWorkerMS       float64  `json:"per_worker_ms"`
	SharedMS          float64  `json:"shared_ms"`
	SharedVsSeq       float64  `json:"shared_vs_seq"`
	SharedVsPerWorker float64  `json:"shared_vs_per_worker"`
	VerdictsAgree     bool     `json:"verdicts_agree"`
	Outcome           string   `json:"outcome"`
	Iterations        int      `json:"iterations"`
	SeqStats          RepStats `json:"seq_stats"`
	PerWorkerStats    RepStats `json:"per_worker_stats"`
	SharedStats       RepStats `json:"shared_stats"`
}

// RepStats summarizes the full repetition sample behind one best-of
// wall time, so a lucky best cannot hide run-to-run noise: a variance
// comparable to the mean gap between two configurations means the
// headline ratio is not trustworthy at this repeat count.
type RepStats struct {
	MinMS      float64 `json:"min_ms"`
	MaxMS      float64 `json:"max_ms"`
	MeanMS     float64 `json:"mean_ms"`
	VarianceMS float64 `json:"variance_ms2"` // population variance, ms²
}

func repStats(walls []time.Duration) RepStats {
	var s RepStats
	if len(walls) == 0 {
		return s
	}
	toMS := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	s.MinMS, s.MaxMS = toMS(walls[0]), toMS(walls[0])
	sum := 0.0
	for _, d := range walls {
		ms := toMS(d)
		if ms < s.MinMS {
			s.MinMS = ms
		}
		if ms > s.MaxMS {
			s.MaxMS = ms
		}
		sum += ms
	}
	s.MeanMS = sum / float64(len(walls))
	for _, d := range walls {
		dev := toMS(d) - s.MeanMS
		s.VarianceMS += dev * dev
	}
	s.VarianceMS /= float64(len(walls))
	return s
}

// SpeedupReport is the top-level -speedup JSON document. The GOMAXPROCS
// and NumCPU fields keep the numbers honest: a Workers=8 run on a
// single-core container measures hand-off elimination (Transfer and
// mirror-population work the shared path never does), not parallelism.
// Degraded makes that condition impossible to miss: it is true whenever
// the grid ran without schedulable parallelism, and any "speedup" in a
// degraded report must not be quoted as one.
type SpeedupReport struct {
	Schema     string              `json:"schema"`
	Generated  string              `json:"generated,omitempty"` // RFC 3339
	Workers    int                 `json:"workers"`
	Repeats    int                 `json:"repeats"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	NumCPU     int                 `json:"num_cpu"`
	Degraded   bool                `json:"degraded"`
	Quick      bool                `json:"quick"`
	Cells      []SpeedupCellReport `json:"cells"`
}

// runSpeedupConfig runs one (cell, manager-mode) configuration once and
// returns the result plus its wall time.
func runSpeedupConfig(ctx context.Context, c SpeedupCell, opt verify.Options, budget Budget) (verify.Result, time.Duration) {
	var m *bdd.Manager
	if opt.SharedManager {
		m = bdd.NewShared(opt.Workers, 20)
	} else {
		m = bdd.NewWithSize(1<<16, 20)
	}
	p := c.Build(m)
	opt.Budget = budget.Norm()
	start := time.Now()
	res := verify.RunContext(ctx, p, verify.XICI, opt)
	return res, time.Since(start)
}

// RunSpeedup executes the grid: every cell in sequential, per-worker,
// and shared configuration, best-of-reps wall time each, with progress
// rows streamed to w.
func RunSpeedup(ctx context.Context, w io.Writer, workers, reps int, quick bool, budget Budget) *SpeedupReport {
	if workers <= 0 {
		workers = 8
	}
	if reps <= 0 {
		reps = 3
	}
	rep := &SpeedupReport{
		Schema:     SpeedupSchema,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Workers:    workers,
		Repeats:    reps,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Quick:      quick,
	}
	rep.Degraded = rep.GOMAXPROCS <= 1 || rep.NumCPU <= 1
	if rep.Degraded {
		fmt.Fprintf(w, "WARNING: no schedulable parallelism (GOMAXPROCS=%d, NumCPU=%d); ratios measure hand-off elimination only\n",
			rep.GOMAXPROCS, rep.NumCPU)
	}
	fmt.Fprintf(w, "Speedup grid: XICI, workers=%d, best of %d (GOMAXPROCS=%d, NumCPU=%d)\n",
		workers, reps, rep.GOMAXPROCS, rep.NumCPU)
	fmt.Fprintf(w, "%-16s %10s %12s %10s %8s %8s\n",
		"cell", "seq", "per-worker", "shared", "vs-seq", "vs-pw")

	configs := []verify.Options{
		{},
		{Workers: workers},
		{Workers: workers, SharedManager: true},
	}
	for _, c := range SpeedupCells(quick) {
		var best [3]time.Duration
		var walls [3][]time.Duration
		var results [3]verify.Result
		for cfg, opt := range configs {
			for r := 0; r < reps; r++ {
				res, wall := runSpeedupConfig(ctx, c, opt, budget)
				walls[cfg] = append(walls[cfg], wall)
				if r == 0 || wall < best[cfg] {
					best[cfg] = wall
					results[cfg] = res
				}
			}
		}
		agree := results[0].Outcome == results[1].Outcome &&
			results[1].Outcome == results[2].Outcome &&
			results[0].Iterations == results[1].Iterations &&
			results[1].Iterations == results[2].Iterations
		cr := SpeedupCellReport{
			Group:         c.Group,
			Method:        string(verify.XICI),
			SeqMS:         float64(best[0].Microseconds()) / 1000,
			PerWorkerMS:   float64(best[1].Microseconds()) / 1000,
			SharedMS:      float64(best[2].Microseconds()) / 1000,
			VerdictsAgree: agree,
			Outcome:       results[0].Outcome.String(),
			Iterations:    results[0].Iterations,

			SeqStats:       repStats(walls[0]),
			PerWorkerStats: repStats(walls[1]),
			SharedStats:    repStats(walls[2]),
		}
		if cr.SharedMS > 0 {
			cr.SharedVsSeq = cr.SeqMS / cr.SharedMS
			cr.SharedVsPerWorker = cr.PerWorkerMS / cr.SharedMS
		}
		rep.Cells = append(rep.Cells, cr)
		mark := ""
		if !agree {
			mark = "  DISAGREE"
		}
		fmt.Fprintf(w, "%-16s %9.1fms %11.1fms %9.1fms %7.2fx %7.2fx%s\n",
			c.Group, cr.SeqMS, cr.PerWorkerMS, cr.SharedMS, cr.SharedVsSeq, cr.SharedVsPerWorker, mark)
	}
	return rep
}

// Write marshals the speedup report (indented, trailing newline) to path.
func (r *SpeedupReport) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
