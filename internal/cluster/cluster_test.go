package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// Two rings built from the same membership in different orders (and
// with duplicates) must agree on every key — the zero-coordination
// agreement property routing rests on.
func TestRingDeterministicAcrossNodes(t *testing.T) {
	a := NewRing([]string{"n1:1", "n2:2", "n3:3"}, 64)
	b := NewRing([]string{"n3:3", "n1:1", "n2:2", "n1:1"}, 64)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("ir:(model %d)", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("rings disagree on %q: %q vs %q", key, a.Owner(key), b.Owner(key))
		}
	}
}

// Virtual nodes must spread keys roughly evenly: no member of a
// 4-node ring should own less than half or more than double its fair
// share over a large key sample.
func TestRingBalance(t *testing.T) {
	members := []string{"a:1", "b:2", "c:3", "d:4"}
	r := NewRing(members, 128)
	counts := map[string]int{}
	const n = 8000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	fair := n / len(members)
	for _, m := range members {
		if counts[m] < fair/2 || counts[m] > fair*2 {
			t.Errorf("member %s owns %d keys, fair share %d", m, counts[m], fair)
		}
	}
}

// Removing one member must only move the removed member's keys:
// everything owned by a surviving member stays put (the 1/N churn
// property that makes cache locality survive membership edits).
func TestRingMinimalChurn(t *testing.T) {
	full := NewRing([]string{"a:1", "b:2", "c:3", "d:4"}, 128)
	reduced := NewRing([]string{"a:1", "b:2", "c:3"}, 128)
	moved := 0
	for i := 0; i < 4000; i++ {
		key := fmt.Sprintf("key-%d", i)
		was := full.Owner(key)
		now := reduced.Owner(key)
		if was != "d:4" && was != now {
			t.Fatalf("key %q moved %q -> %q though its owner survived", key, was, now)
		}
		if was == "d:4" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("test vacuous: removed member owned nothing")
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if got := NewRing(nil, 8).Owner("k"); got != "" {
		t.Fatalf("empty ring owner %q", got)
	}
	one := NewRing([]string{"solo:1"}, 8)
	for i := 0; i < 50; i++ {
		if got := one.Owner(fmt.Sprintf("k%d", i)); got != "solo:1" {
			t.Fatalf("single-member ring routed %q elsewhere: %q", fmt.Sprintf("k%d", i), got)
		}
	}
}

// The health loop marks a peer down when its /healthz stops answering
// "ok", and back up when it recovers; a draining peer counts as down.
func TestHealthProbeFlips(t *testing.T) {
	var mode atomic.Value
	mode.Store("ok")
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m := mode.Load().(string)
		if m == "dead" {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, `{"status":%q}`, m)
	}))
	defer peer.Close()

	c := New(Config{
		Self:          "self:1",
		Peers:         []string{peer.URL},
		CheckInterval: 20 * time.Millisecond,
		ProbeTimeout:  500 * time.Millisecond,
	})
	c.Start()
	defer c.Stop()

	waitAlive := func(want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if c.Alive(peer.URL) == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("peer never became %s", what)
	}

	waitAlive(true, "alive")
	mode.Store("draining")
	waitAlive(false, "down while draining")
	mode.Store("ok")
	waitAlive(true, "alive again")
	mode.Store("dead")
	waitAlive(false, "down on 500s")

	st := c.Status()
	if len(st.Peers) != 1 || st.Peers[0].Probes == 0 {
		t.Fatalf("status: %+v", st)
	}
	if len(st.Members) != 2 {
		t.Fatalf("members: %v", st.Members)
	}
}

// ReportFailure downs a peer immediately, without waiting for the
// probe loop, and self is always alive.
func TestReportFailureAndSelf(t *testing.T) {
	c := New(Config{Self: "me:1", Peers: []string{"gone:2"}, CheckInterval: time.Hour})
	if !c.Alive("gone:2") {
		t.Fatal("peers must start optimistically alive")
	}
	c.ReportFailure("gone:2", fmt.Errorf("connection refused"))
	if c.Alive("gone:2") {
		t.Fatal("failed peer still alive")
	}
	if !c.Alive("me:1") {
		t.Fatal("self must always be alive")
	}
	if c.Alive("stranger:9") {
		t.Fatal("unknown address alive")
	}
	if addr, self := c.OwnerOf("some-key"); addr == "" || (self != (addr == "me:1")) {
		t.Fatalf("OwnerOf: %q self=%v", addr, self)
	}
}

func TestBaseURL(t *testing.T) {
	if got := BaseURL("host:8417"); got != "http://host:8417" {
		t.Fatalf("BaseURL: %q", got)
	}
	if got := BaseURL("https://x.example/"); got != "https://x.example" {
		t.Fatalf("BaseURL: %q", got)
	}
}
