package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring with virtual nodes. Every member is
// hashed VNodes times onto a 64-bit circle; a key's owner is the
// member whose first virtual node follows the key's hash clockwise.
// The construction is a pure function of the (deduplicated, sorted)
// member set and the vnode count, so every node that is configured
// with the same membership computes the same owner for every key —
// the property cluster routing rests on. Virtual nodes smooth the
// load split and keep ownership churn proportional to 1/N when a
// member joins or leaves.
type Ring struct {
	vnodes  int
	members []string
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	addr string
}

// hash64 is the ring's position function: the first 8 bytes of a
// SHA-256, which is stable across architectures and Go versions
// (unlike maphash) — a requirement, since every node must agree.
func hash64(s string) uint64 {
	h := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(h[:8])
}

// NewRing builds the ring over members (deduplicated) with vnodes
// virtual nodes each (<= 0 selects 64).
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	seen := map[string]bool{}
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, members: uniq}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for _, m := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", m, i)), addr: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].addr < r.points[j].addr
	})
	return r
}

// Owner returns the member owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle's first point
	}
	return r.points[i].addr
}

// Members returns the deduplicated, sorted member list.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// VNodes returns the virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }
