// Package cluster implements icid's consistent-hash job routing:
// N peer daemons, each configured with the same membership, agree —
// with no coordination protocol — on which node owns a canonical model
// identity, so identical submissions entering anywhere in the cluster
// always land on the owning shard's result cache and proof store.
// Membership is static (the -peers flag); liveness is dynamic: a
// background loop probes every peer's /healthz, a node that fails its
// probe (or a forward) is marked down, and the server falls back to
// local execution for keys owned by a down peer until it recovers.
package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Config describes one node's view of the cluster.
type Config struct {
	// Self is this node's advertised address (host:port, or a full
	// http:// URL) — the identity its peers route to it by. It must
	// appear in every peer's Peers list spelled identically.
	Self string

	// Peers are the other members' advertised addresses.
	Peers []string

	// VNodes is the virtual-node count per member (<= 0 selects 64).
	VNodes int

	// CheckInterval paces the health-probe loop (0 = 2s).
	CheckInterval time.Duration

	// ProbeTimeout bounds one health probe (0 = 1s).
	ProbeTimeout time.Duration
}

// Cluster is one node's routing and liveness state.
type Cluster struct {
	self  string
	ring  *Ring
	probe *http.Client
	every time.Duration

	mu    sync.Mutex
	peers map[string]*peerState

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

type peerState struct {
	addr      string
	alive     bool
	lastCheck time.Time
	lastErr   string
	probes    int64
	failures  int64
}

// New builds the cluster state. Peers start optimistically alive — a
// peer that is actually down is discovered by the first probe or the
// first failed forward — so a cluster booting all at once never
// wrongly falls back to local execution. Call Start to begin probing.
func New(cfg Config) *Cluster {
	if cfg.CheckInterval <= 0 {
		cfg.CheckInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	c := &Cluster{
		self:  cfg.Self,
		ring:  NewRing(append(append([]string(nil), cfg.Peers...), cfg.Self), cfg.VNodes),
		probe: &http.Client{Timeout: cfg.ProbeTimeout},
		every: cfg.CheckInterval,
		peers: make(map[string]*peerState),
		stop:  make(chan struct{}),
	}
	for _, p := range cfg.Peers {
		if p == "" || p == cfg.Self {
			continue
		}
		c.peers[p] = &peerState{addr: p, alive: true}
	}
	return c
}

// Self returns this node's advertised address.
func (c *Cluster) Self() string { return c.self }

// Ring returns the routing ring (shared, immutable).
func (c *Cluster) Ring() *Ring { return c.ring }

// OwnerOf returns the member owning key and whether that is this node.
func (c *Cluster) OwnerOf(key string) (addr string, self bool) {
	addr = c.ring.Owner(key)
	return addr, addr == c.self || addr == ""
}

// Alive reports whether addr is believed healthy. Self is always
// alive; unknown addresses never are.
func (c *Cluster) Alive(addr string) bool {
	if addr == c.self {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.peers[addr]
	return ok && p.alive
}

// ReportFailure marks a peer down immediately — called when a forward
// to it fails, so the very next submission falls back locally instead
// of waiting out the probe interval.
func (c *Cluster) ReportFailure(addr string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.peers[addr]; ok {
		p.alive = false
		p.failures++
		p.lastCheck = time.Now()
		if err != nil {
			p.lastErr = err.Error()
		}
	}
}

// Start launches the background health-probe loop (idempotent per
// cluster; call Stop to end it). The first round runs immediately.
func (c *Cluster) Start() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.probeAll()
		t := time.NewTicker(c.every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.probeAll()
			case <-c.stop:
				return
			}
		}
	}()
}

// Stop ends the probe loop and waits for it.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// probeAll checks every peer concurrently. A peer is alive when its
// /healthz answers 200 with status "ok" — a draining peer reports
// "draining" and is treated as down, so forwards route around a node
// that is shutting down before its listener closes.
func (c *Cluster) probeAll() {
	c.mu.Lock()
	addrs := make([]string, 0, len(c.peers))
	for a := range c.peers {
		addrs = append(addrs, a)
	}
	c.mu.Unlock()

	var wg sync.WaitGroup
	for _, addr := range addrs {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			alive, err := c.probeOne(addr)
			c.mu.Lock()
			if p, ok := c.peers[addr]; ok {
				p.alive = alive
				p.probes++
				p.lastCheck = time.Now()
				if err != nil {
					p.lastErr = err.Error()
					p.failures++
				} else {
					p.lastErr = ""
				}
			}
			c.mu.Unlock()
		}(addr)
	}
	wg.Wait()
}

func (c *Cluster) probeOne(addr string) (bool, error) {
	resp, err := c.probe.Get(BaseURL(addr) + "/healthz")
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("healthz: %s", resp.Status)
	}
	var h struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		return false, fmt.Errorf("healthz: %w", err)
	}
	if h.Status != "ok" {
		return false, fmt.Errorf("healthz: status %q", h.Status)
	}
	return true, nil
}

// BaseURL normalizes an advertised address into a request base:
// "host:port" gains the http scheme, full URLs pass through.
func BaseURL(addr string) string {
	if strings.Contains(addr, "://") {
		return strings.TrimRight(addr, "/")
	}
	return "http://" + addr
}

// Status is the wire form of GET /cluster.
type Status struct {
	Self    string       `json:"self"`
	VNodes  int          `json:"vnodes"`
	Members []string     `json:"members"`
	Peers   []PeerStatus `json:"peers"`
}

// PeerStatus is one peer's liveness view.
type PeerStatus struct {
	Addr      string `json:"addr"`
	Alive     bool   `json:"alive"`
	LastCheck string `json:"last_check,omitempty"`
	LastError string `json:"last_error,omitempty"`
	Probes    int64  `json:"probes"`
	Failures  int64  `json:"failures"`
}

// Status snapshots the cluster for the /cluster endpoint.
func (c *Cluster) Status() Status {
	st := Status{Self: c.self, VNodes: c.ring.VNodes(), Members: c.ring.Members()}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.peers {
		ps := PeerStatus{
			Addr: p.addr, Alive: p.alive,
			LastError: p.lastErr, Probes: p.probes, Failures: p.failures,
		}
		if !p.lastCheck.IsZero() {
			ps.LastCheck = p.lastCheck.UTC().Format(time.RFC3339Nano)
		}
		st.Peers = append(st.Peers, ps)
	}
	sortPeers(st.Peers)
	return st
}

func sortPeers(ps []PeerStatus) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].Addr < ps[j-1].Addr; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}
