// Package resource defines the single resource-bound value — the Budget
// — threaded through every verification run, from the cmd binaries
// through verify and core down to the bdd substrate, together with the
// typed errors a run reports when it overruns a bound.
//
// Before this package existed, resource control was smeared across three
// mechanisms: the manager's panic-based node limit, the manager deadline
// with its allocation-countdown clock checks, and per-engine timeout
// closures. A Budget unifies them: one value carrying the live-node
// limit, the wall bound (relative or absolute), the traversal iteration
// cap, and a context.Context for cancellation. Layers keep their cheap
// internal checks but source them from the installed Budget, and every
// overrun surfaces as a typed, errors.Is-matchable error:
//
//	ErrNodeLimit      the run allocated past Budget.NodeLimit
//	ErrDeadline       the wall clock passed the resolved deadline
//	ErrIterLimit      the traversal hit Budget.MaxIterations
//	context.Canceled  the Budget's context was canceled
//
// The panic values raised deep inside BDD operations (*LimitError,
// *DeadlineError, *CancelError, *IterError) match those sentinels via
// errors.Is; Guard converts them into error returns at an API boundary.
package resource

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Sentinel errors for errors.Is matching. The concrete error values a
// run returns are the structured types below, which carry the numbers
// behind the overrun; these sentinels classify them.
var (
	// ErrNodeLimit marks a live-node budget overrun — the analog of the
	// paper's "Exceeded 60MB" rows.
	ErrNodeLimit = errors.New("resource: node limit exceeded")

	// ErrDeadline marks a wall-clock overrun — the "Exceeded 40
	// minutes" rows.
	ErrDeadline = errors.New("resource: deadline exceeded")

	// ErrIterLimit marks a traversal that hit its iteration cap before
	// converging.
	ErrIterLimit = errors.New("resource: iteration cap exceeded")
)

// Unlimited is the explicit "no bound" sentinel for Budget fields in
// harnesses where the zero value means "inherit a default" (the bench
// grids): a cell whose NodeLimit or Timeout is Unlimited runs with no
// bound at all instead of picking up the grid's. It is untyped so it
// assigns to both the int and the time.Duration fields; Norm folds it
// (and any other negative value) back to the unbounded zero value
// before the budget reaches the enforcement layers.
const Unlimited = -1

// Budget is one run's complete resource bound. The zero value means
// "unbounded": no node limit, no wall bound, the engine's default
// iteration cap, and no cancellation.
//
// A Budget is a plain value; copying it is cheap and the harness mutates
// only its own copy (Start resolving Timeout into Deadline).
type Budget struct {
	// Ctx carries the run's cancellation signal. Nil means
	// context.Background(); a canceled context aborts BDD operations
	// with *CancelError, which errors.Is-matches context.Canceled.
	Ctx context.Context

	// NodeLimit bounds live BDD nodes for the run (0 = keep the
	// manager's current limit). Exceeding it aborts the current
	// operation with *LimitError.
	NodeLimit int

	// Timeout bounds wall time relative to the run's start (0 = none).
	// Start resolves it into Deadline.
	Timeout time.Duration

	// Deadline is the absolute wall bound (zero = none). Usually left
	// zero and derived from Timeout by Start; set it directly to share
	// one absolute deadline across several runs.
	Deadline time.Time

	// MaxIterations caps traversal depth (0 = the engine's default).
	MaxIterations int
}

// Start resolves the relative Timeout against now, returning a budget
// whose Deadline reflects the earlier of the existing Deadline and
// now+Timeout. The run harness calls it once at run start.
func (b Budget) Start(now time.Time) Budget {
	if b.Timeout > 0 {
		d := now.Add(b.Timeout)
		if b.Deadline.IsZero() || d.Before(b.Deadline) {
			b.Deadline = d
		}
	}
	return b
}

// Norm returns the budget with negative (explicitly Unlimited) bounds
// folded to their unbounded zero values. Harnesses that treat a zero
// field as "inherit a default" apply their defaults first, then Norm;
// the run harness also calls it, so an un-normalized Unlimited passed
// straight to verify.Run still means "no bound" (for MaxIterations,
// "the engine's default cap", the same as zero).
func (b Budget) Norm() Budget {
	if b.NodeLimit < 0 {
		b.NodeLimit = 0
	}
	if b.Timeout < 0 {
		b.Timeout = 0
	}
	if b.MaxIterations < 0 {
		b.MaxIterations = 0
	}
	return b
}

// Context returns the budget's context, defaulting to Background.
func (b Budget) Context() context.Context {
	if b.Ctx == nil {
		return context.Background()
	}
	return b.Ctx
}

// MaxIter returns the iteration cap, defaulting to def when unset.
func (b Budget) MaxIter(def int) int {
	if b.MaxIterations <= 0 {
		return def
	}
	return b.MaxIterations
}

// Err reports whether the budget is already violated on the wall clock
// or canceled: nil while the run may continue. Node and iteration
// bounds are enforced where the counters live (the manager's allocator,
// the engine's loop), not here.
func (b Budget) Err() error {
	if b.Ctx != nil {
		if err := b.Ctx.Err(); err != nil {
			return &CancelError{Cause: err}
		}
	}
	if !b.Deadline.IsZero() && time.Now().After(b.Deadline) {
		return &DeadlineError{Deadline: b.Deadline}
	}
	return nil
}

// JoinContext returns a context that is done as soon as either a or b
// is done, with the finishing context's cause. Nil arguments mean
// Background. The returned CancelFunc must be called to release the
// join's resources (it also cancels the joined context).
//
// The join is what ties a server-side job budget to an HTTP request:
// the budget's own context carries the daemon's lifecycle and explicit
// job cancellation, the request context carries the client connection,
// and the job must abort when either ends.
func JoinContext(a, b context.Context) (context.Context, context.CancelFunc) {
	if a == nil {
		a = context.Background()
	}
	if b == nil {
		b = context.Background()
	}
	// When one side can never be canceled the join is just the other
	// side; a plain WithCancel keeps the fast path allocation-light.
	if b.Done() == nil {
		return context.WithCancel(a)
	}
	if a.Done() == nil {
		return context.WithCancel(b)
	}
	ctx, cancel := context.WithCancelCause(a)
	stop := context.AfterFunc(b, func() {
		cancel(context.Cause(b))
	})
	return ctx, func() {
		stop()
		cancel(context.Canceled)
	}
}

// Join returns the budget with its context joined to ctx: the run
// aborts when either the budget's own context or ctx is done. The
// returned CancelFunc releases the join and must be called when the run
// finishes.
func (b Budget) Join(ctx context.Context) (Budget, context.CancelFunc) {
	joined, cancel := JoinContext(b.Ctx, ctx)
	b.Ctx = joined
	return b, cancel
}

// LimitError is the panic value raised when an operation would push a
// manager past its node limit. errors.Is(err, ErrNodeLimit) matches it.
type LimitError struct {
	Limit int // configured node limit
	Live  int // live nodes at the moment of the abort
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("resource: node limit exceeded (%d live nodes, limit %d)", e.Live, e.Limit)
}

// Is matches the ErrNodeLimit sentinel.
func (e *LimitError) Is(target error) bool { return target == ErrNodeLimit }

// DeadlineError is the panic value raised when an operation overruns
// the wall deadline. errors.Is(err, ErrDeadline) matches it.
type DeadlineError struct {
	Deadline time.Time
}

func (e *DeadlineError) Error() string {
	return "resource: operation deadline exceeded"
}

// Is matches the ErrDeadline sentinel.
func (e *DeadlineError) Is(target error) bool { return target == ErrDeadline }

// IterError is the error reported when a traversal hits its iteration
// cap. errors.Is(err, ErrIterLimit) matches it.
type IterError struct {
	Limit int
}

func (e *IterError) Error() string {
	return fmt.Sprintf("resource: iteration bound %d reached", e.Limit)
}

// Is matches the ErrIterLimit sentinel.
func (e *IterError) Is(target error) bool { return target == ErrIterLimit }

// CancelError is the panic value raised when the installed context is
// observed canceled mid-operation. It unwraps to the context's own
// error, so errors.Is(err, context.Canceled) (or DeadlineExceeded, for
// a context with its own deadline) matches.
type CancelError struct {
	Cause error // the context's Err()
}

func (e *CancelError) Error() string {
	return "resource: run canceled: " + e.Cause.Error()
}

// Unwrap exposes the context error for errors.Is.
func (e *CancelError) Unwrap() error { return e.Cause }

// Guard runs f, converting a resource-overrun panic (*LimitError,
// *DeadlineError, *CancelError, *IterError) into an error return. Any
// other panic is re-raised. It is the intended API boundary for
// resource-bounded verification runs.
func Guard(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			switch e := r.(type) {
			case *LimitError:
				err = e
			case *DeadlineError:
				err = e
			case *CancelError:
				err = e
			case *IterError:
				err = e
			default:
				panic(r)
			}
		}
	}()
	f()
	return nil
}
