package resource

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestPoolClampBoundsNodeLimit(t *testing.T) {
	p := NewPool(1000, 0)

	// Unbounded request: clamped to the full pool.
	b, err := p.Clamp(Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if b.NodeLimit != 1000 {
		t.Fatalf("NodeLimit = %d, want 1000", b.NodeLimit)
	}
	// A tighter request passes through untouched.
	b, err = p.Clamp(Budget{NodeLimit: 300})
	if err != nil || b.NodeLimit != 300 {
		t.Fatalf("NodeLimit = %d err %v, want 300", b.NodeLimit, err)
	}

	// After consumption the clamp tracks the remainder.
	p.Consume(800)
	b, err = p.Clamp(Budget{NodeLimit: 300})
	if err != nil || b.NodeLimit != 200 {
		t.Fatalf("after consume: NodeLimit = %d err %v, want 200", b.NodeLimit, err)
	}

	// A dry pool refuses with the typed node-limit error.
	p.Consume(500)
	if n, _ := p.Remaining(); n != 0 {
		t.Fatalf("remaining = %d, want 0", n)
	}
	if _, err = p.Clamp(Budget{}); !errors.Is(err, ErrNodeLimit) {
		t.Fatalf("dry pool error %v, want ErrNodeLimit match", err)
	}
}

func TestPoolDeadlineClampAndExpiry(t *testing.T) {
	p := NewPool(0, 50*time.Millisecond)
	b, err := p.Clamp(Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Deadline.IsZero() {
		t.Fatal("pool window did not install a deadline")
	}
	// A run deadline earlier than the pool's wins.
	early := time.Now().Add(time.Millisecond)
	b, _ = p.Clamp(Budget{Deadline: early})
	if !b.Deadline.Equal(early) {
		t.Fatalf("earlier run deadline was overridden: %v", b.Deadline)
	}

	time.Sleep(60 * time.Millisecond)
	if _, err = p.Clamp(Budget{}); !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired pool error %v, want ErrDeadline match", err)
	}
}

func TestPoolUnboundedIsIdentity(t *testing.T) {
	p := NewPool(0, 0)
	if p.Bounded() {
		t.Fatal("zero pool reports bounded")
	}
	in := Budget{NodeLimit: 42, MaxIterations: 7}
	out, err := p.Clamp(in)
	if err != nil || out != in {
		t.Fatalf("Clamp changed the budget: %+v err %v", out, err)
	}
	p.Consume(1 << 30)
	if n, _ := p.Remaining(); n != Unlimited {
		t.Fatalf("unbounded pool consumed: %d", n)
	}
}

func TestPoolConcurrentConsume(t *testing.T) {
	p := NewPool(10_000, 0)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				p.Consume(3)
				p.Clamp(Budget{})
			}
		}()
	}
	wg.Wait()
	if n, _ := p.Remaining(); n != 4000 {
		t.Fatalf("remaining = %d, want 4000", n)
	}
}
