package resource

import (
	"sync"
	"time"
)

// Pool is a shared, concurrency-safe resource allowance for a batch of
// related runs: a node pool decremented as runs finish and one absolute
// wall deadline the whole batch must meet. It composes with the
// per-run Budget rather than replacing it — Clamp bounds a run's
// Budget to what the pool has left, and the run's own enforcement
// layers (the manager's allocator, the harness deadline checks) do the
// actual policing. Exhaustion therefore surfaces through the same
// typed taxonomy as any other overrun: *LimitError (errors.Is
// ErrNodeLimit) when the node pool is dry, *DeadlineError (errors.Is
// ErrDeadline) when the pool's window has closed.
type Pool struct {
	mu       sync.Mutex
	total    int       // configured node allowance (informational)
	nodes    int       // remaining node allowance; Unlimited = unbounded
	deadline time.Time // absolute wall bound; zero = none
}

// NewPool creates a pool with the given node allowance (<= 0 =
// unbounded) and wall window (<= 0 = none), the window anchored at
// now.
func NewPool(nodeBudget int, window time.Duration) *Pool {
	p := &Pool{total: nodeBudget, nodes: Unlimited}
	if nodeBudget > 0 {
		p.nodes = nodeBudget
	}
	if window > 0 {
		p.deadline = time.Now().Add(window)
	}
	return p
}

// Bounded reports whether the pool constrains anything at all. An
// unbounded pool makes Clamp the identity, which callers use to keep
// pool-independent invariants (result caching is content-addressed
// only when the budget does not depend on pool state).
func (p *Pool) Bounded() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nodes != Unlimited || !p.deadline.IsZero()
}

// Clamp returns b bounded to the pool's remaining allowance: the node
// limit is lowered to the remaining pool (when the pool is tighter or
// b is unbounded) and the deadline to the pool's window. When the pool
// is already exhausted it returns the typed error instead — a
// *LimitError for a dry node pool, a *DeadlineError for a closed
// window — so callers can finalize the run through the ordinary cause
// taxonomy without having started it.
func (p *Pool) Clamp(b Budget) (Budget, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.nodes == 0 {
		return b, &LimitError{Limit: p.total, Live: p.total}
	}
	if !p.deadline.IsZero() && !time.Now().Before(p.deadline) {
		return b, &DeadlineError{Deadline: p.deadline}
	}
	if p.nodes > 0 && (b.NodeLimit <= 0 || b.NodeLimit > p.nodes) {
		b.NodeLimit = p.nodes
	}
	if !p.deadline.IsZero() && (b.Deadline.IsZero() || p.deadline.Before(b.Deadline)) {
		b.Deadline = p.deadline
	}
	return b, nil
}

// Consume decrements the node pool by n — typically a finished run's
// peak live node count. It never goes below zero; an unbounded pool is
// untouched.
func (p *Pool) Consume(n int) {
	if n <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.nodes == Unlimited {
		return
	}
	p.nodes -= n
	if p.nodes < 0 {
		p.nodes = 0
	}
}

// Remaining reports the node allowance left (Unlimited for an
// unbounded pool) and the pool's absolute deadline (zero for none).
func (p *Pool) Remaining() (nodes int, deadline time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nodes, p.deadline
}
