package resource

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestStartResolvesTimeout(t *testing.T) {
	now := time.Unix(1000, 0)
	b := Budget{Timeout: time.Minute}.Start(now)
	if !b.Deadline.Equal(now.Add(time.Minute)) {
		t.Fatalf("deadline %v", b.Deadline)
	}
	// An earlier absolute deadline wins over the relative timeout.
	early := now.Add(time.Second)
	b = Budget{Timeout: time.Minute, Deadline: early}.Start(now)
	if !b.Deadline.Equal(early) {
		t.Fatalf("deadline %v, want the earlier %v", b.Deadline, early)
	}
	// And vice versa.
	late := now.Add(time.Hour)
	b = Budget{Timeout: time.Minute, Deadline: late}.Start(now)
	if !b.Deadline.Equal(now.Add(time.Minute)) {
		t.Fatalf("deadline %v, want now+1m", b.Deadline)
	}
	// No timeout: deadline untouched.
	if b := (Budget{}).Start(now); !b.Deadline.IsZero() {
		t.Fatalf("zero budget grew a deadline: %v", b.Deadline)
	}
}

func TestMaxIterDefault(t *testing.T) {
	if got := (Budget{}).MaxIter(42); got != 42 {
		t.Fatalf("default MaxIter = %d", got)
	}
	if got := (Budget{MaxIterations: 7}).MaxIter(42); got != 7 {
		t.Fatalf("explicit MaxIter = %d", got)
	}
}

func TestErrClassifiesViolations(t *testing.T) {
	if err := (Budget{}).Err(); err != nil {
		t.Fatalf("zero budget violated: %v", err)
	}
	past := Budget{Deadline: time.Now().Add(-time.Second)}
	if err := past.Err(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("past deadline: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := Budget{Ctx: ctx}
	err := b.Err()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx: %v", err)
	}
	// Cancellation is reported ahead of the deadline.
	b.Deadline = time.Now().Add(-time.Second)
	if err := b.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled+expired: %v", err)
	}
}

func TestTypedErrorsMatchSentinels(t *testing.T) {
	cases := []struct {
		err  error
		want error
	}{
		{&LimitError{Limit: 10, Live: 11}, ErrNodeLimit},
		{&DeadlineError{Deadline: time.Now()}, ErrDeadline},
		{&IterError{Limit: 5}, ErrIterLimit},
		{&CancelError{Cause: context.Canceled}, context.Canceled},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.want) {
			t.Fatalf("%T does not match %v", c.err, c.want)
		}
		if c.err.Error() == "" {
			t.Fatalf("%T has empty message", c.err)
		}
	}
	if errors.Is(&LimitError{}, ErrDeadline) || errors.Is(&DeadlineError{}, ErrNodeLimit) {
		t.Fatal("sentinels cross-match")
	}
}

func TestGuardConvertsResourcePanics(t *testing.T) {
	for _, p := range []error{
		&LimitError{Limit: 1, Live: 2},
		&DeadlineError{Deadline: time.Now()},
		&CancelError{Cause: context.Canceled},
		&IterError{Limit: 3},
	} {
		p := p
		err := Guard(func() { panic(p) })
		if !errors.Is(err, p) {
			t.Fatalf("Guard returned %v, want %v", err, p)
		}
	}
	if err := Guard(func() {}); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	// Foreign panics propagate.
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic swallowed")
		}
	}()
	_ = Guard(func() { panic("boom") })
}
