package resource

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestStartResolvesTimeout(t *testing.T) {
	now := time.Unix(1000, 0)
	b := Budget{Timeout: time.Minute}.Start(now)
	if !b.Deadline.Equal(now.Add(time.Minute)) {
		t.Fatalf("deadline %v", b.Deadline)
	}
	// An earlier absolute deadline wins over the relative timeout.
	early := now.Add(time.Second)
	b = Budget{Timeout: time.Minute, Deadline: early}.Start(now)
	if !b.Deadline.Equal(early) {
		t.Fatalf("deadline %v, want the earlier %v", b.Deadline, early)
	}
	// And vice versa.
	late := now.Add(time.Hour)
	b = Budget{Timeout: time.Minute, Deadline: late}.Start(now)
	if !b.Deadline.Equal(now.Add(time.Minute)) {
		t.Fatalf("deadline %v, want now+1m", b.Deadline)
	}
	// No timeout: deadline untouched.
	if b := (Budget{}).Start(now); !b.Deadline.IsZero() {
		t.Fatalf("zero budget grew a deadline: %v", b.Deadline)
	}
}

func TestMaxIterDefault(t *testing.T) {
	if got := (Budget{}).MaxIter(42); got != 42 {
		t.Fatalf("default MaxIter = %d", got)
	}
	if got := (Budget{MaxIterations: 7}).MaxIter(42); got != 7 {
		t.Fatalf("explicit MaxIter = %d", got)
	}
}

func TestErrClassifiesViolations(t *testing.T) {
	if err := (Budget{}).Err(); err != nil {
		t.Fatalf("zero budget violated: %v", err)
	}
	past := Budget{Deadline: time.Now().Add(-time.Second)}
	if err := past.Err(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("past deadline: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := Budget{Ctx: ctx}
	err := b.Err()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx: %v", err)
	}
	// Cancellation is reported ahead of the deadline.
	b.Deadline = time.Now().Add(-time.Second)
	if err := b.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled+expired: %v", err)
	}
}

func TestTypedErrorsMatchSentinels(t *testing.T) {
	cases := []struct {
		err  error
		want error
	}{
		{&LimitError{Limit: 10, Live: 11}, ErrNodeLimit},
		{&DeadlineError{Deadline: time.Now()}, ErrDeadline},
		{&IterError{Limit: 5}, ErrIterLimit},
		{&CancelError{Cause: context.Canceled}, context.Canceled},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.want) {
			t.Fatalf("%T does not match %v", c.err, c.want)
		}
		if c.err.Error() == "" {
			t.Fatalf("%T has empty message", c.err)
		}
	}
	if errors.Is(&LimitError{}, ErrDeadline) || errors.Is(&DeadlineError{}, ErrNodeLimit) {
		t.Fatal("sentinels cross-match")
	}
}

func TestGuardConvertsResourcePanics(t *testing.T) {
	for _, p := range []error{
		&LimitError{Limit: 1, Live: 2},
		&DeadlineError{Deadline: time.Now()},
		&CancelError{Cause: context.Canceled},
		&IterError{Limit: 3},
	} {
		p := p
		err := Guard(func() { panic(p) })
		if !errors.Is(err, p) {
			t.Fatalf("Guard returned %v, want %v", err, p)
		}
	}
	if err := Guard(func() {}); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	// Foreign panics propagate.
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic swallowed")
		}
	}()
	_ = Guard(func() { panic("boom") })
}

func TestJoinContextEitherSideCancels(t *testing.T) {
	// Left side cancels the join.
	a, cancelA := context.WithCancel(context.Background())
	b, cancelB := context.WithCancel(context.Background())
	joined, release := JoinContext(a, b)
	defer release()
	cancelA()
	select {
	case <-joined.Done():
	case <-time.After(time.Second):
		t.Fatal("join did not observe left-side cancellation")
	}
	cancelB()

	// Right side cancels the join.
	a2, cancelA2 := context.WithCancel(context.Background())
	b2, cancelB2 := context.WithCancel(context.Background())
	joined2, release2 := JoinContext(a2, b2)
	defer release2()
	cancelB2()
	select {
	case <-joined2.Done():
	case <-time.After(time.Second):
		t.Fatal("join did not observe right-side cancellation")
	}
	if !errors.Is(joined2.Err(), context.Canceled) {
		t.Fatalf("joined err %v, want context.Canceled", joined2.Err())
	}
	cancelA2()
}

func TestJoinContextNilAndBackgroundFastPaths(t *testing.T) {
	// Nil sides behave as Background; the join is still cancellable via
	// its release func.
	joined, release := JoinContext(nil, nil)
	if joined.Err() != nil {
		t.Fatalf("fresh join already done: %v", joined.Err())
	}
	release()
	if !errors.Is(joined.Err(), context.Canceled) {
		t.Fatal("release did not cancel the join")
	}

	// One live side, one Background: cancelling the live side ends the join.
	a, cancelA := context.WithCancel(context.Background())
	joined2, release2 := JoinContext(a, context.Background())
	defer release2()
	cancelA()
	select {
	case <-joined2.Done():
	case <-time.After(time.Second):
		t.Fatal("fast-path join missed cancellation")
	}
}

func TestBudgetJoin(t *testing.T) {
	own, cancelOwn := context.WithCancel(context.Background())
	defer cancelOwn()
	req, cancelReq := context.WithCancel(context.Background())

	b := Budget{Ctx: own, NodeLimit: 42}
	jb, release := b.Join(req)
	defer release()
	if jb.NodeLimit != 42 {
		t.Fatal("Join dropped budget fields")
	}
	if err := jb.Err(); err != nil {
		t.Fatalf("joined budget already violated: %v", err)
	}
	cancelReq() // the "client disconnect"
	select {
	case <-jb.Ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("budget did not observe request cancellation")
	}
	err := jb.Err()
	var ce *CancelError
	if !errors.As(err, &ce) || !errors.Is(err, context.Canceled) {
		t.Fatalf("joined budget err %v, want *CancelError matching context.Canceled", err)
	}
}
