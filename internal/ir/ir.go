// Package ir is the manager-independent model intermediate
// representation every frontend lowers to: a pure expression DAG over
// named variables plus an ordered declaration list (inputs, log-encoded
// state bits with initial values, environment constraints, property
// conjuncts, an optional monolithic goal, functional dependencies, and
// named parameters). A Model carries no BDDs and references no manager;
// Instantiate builds the verify.Problem on any caller-supplied manager
// — per-worker or shared — and produces identical functions on both,
// because BDD canonicity makes the result depend only on the variable
// declaration order the IR fixes.
//
// The IR also has a canonical serialized form (Format) that extends the
// lang surface syntax, so Go-built models, text submissions, and .fsm
// imports all share one content address (the icid cache key). Shared
// subgraphs serialize as (def $k ...) bindings, keeping the text linear
// in the DAG size rather than exponential in its depth.
//
// Constructors fold constants as they build (And drops true arguments,
// ite with a constant condition selects a branch, and so on), so an IR
// expression is always fold-normal: re-lowering a canonicalized model
// reproduces it node for node, which is what makes Format a fixed
// point and DeepEqual round-trips exact.
package ir

import (
	"fmt"
	"strings"
)

// Expression operators. OpVar/OpTrue/OpFalse are leaves; the rest take
// Args. OpAnd/OpOr are variadic with at least two arguments in
// fold-normal form (fewer fold away in the constructors).
const (
	OpVar   = "var"
	OpTrue  = "true"
	OpFalse = "false"
	OpAnd   = "and"
	OpOr    = "or"
	OpNot   = "not"
	OpXor   = "xor"
	OpXnor  = "xnor"
	OpImp   = "imp"
	OpNand  = "nand"
	OpNor   = "nor"
	OpITE   = "ite"
)

// opArity maps operators to argument counts; -1 is variadic. Leaves
// take none.
var opArity = map[string]int{
	OpVar: 0, OpTrue: 0, OpFalse: 0,
	OpAnd: -1, OpOr: -1,
	OpNot: 1,
	OpXor: 2, OpXnor: 2, OpImp: 2, OpNand: 2, OpNor: 2,
	OpITE: 3,
}

// Node is one vertex of the expression DAG. Nodes are shared by
// pointer: a subexpression used twice is the same *Node, and Format
// preserves that sharing via def bindings. Treat nodes as immutable
// once built.
type Node struct {
	Op   string
	Name string  // OpVar only: the variable name
	Args []*Node // operator arguments, nil for leaves
}

var (
	nTrue  = &Node{Op: OpTrue}
	nFalse = &Node{Op: OpFalse}
)

// Bool returns the constant node for b. Constants are singletons, so
// pointer comparison against Bool(true)/Bool(false) is meaningful.
func Bool(b bool) *Node {
	if b {
		return nTrue
	}
	return nFalse
}

// True reports whether n is the constant true.
func (n *Node) True() bool { return n.Op == OpTrue }

// False reports whether n is the constant false.
func (n *Node) False() bool { return n.Op == OpFalse }

// Var returns a fresh variable reference node. Builders cache one node
// per variable, but distinct nodes with equal names denote the same
// variable.
func Var(name string) *Node { return &Node{Op: OpVar, Name: name} }

// And returns the conjunction of args, folding constants: true
// arguments vanish, any false argument collapses the result, zero
// arguments yield true and one argument yields itself.
func And(args ...*Node) *Node {
	kept := make([]*Node, 0, len(args))
	for _, a := range args {
		switch a.Op {
		case OpTrue:
		case OpFalse:
			return nFalse
		default:
			kept = append(kept, a)
		}
	}
	switch len(kept) {
	case 0:
		return nTrue
	case 1:
		return kept[0]
	}
	return &Node{Op: OpAnd, Args: kept}
}

// Or returns the disjunction of args with the dual folds of And.
func Or(args ...*Node) *Node {
	kept := make([]*Node, 0, len(args))
	for _, a := range args {
		switch a.Op {
		case OpFalse:
		case OpTrue:
			return nTrue
		default:
			kept = append(kept, a)
		}
	}
	switch len(kept) {
	case 0:
		return nFalse
	case 1:
		return kept[0]
	}
	return &Node{Op: OpOr, Args: kept}
}

// Not returns the negation of a, folding constants and double
// negation.
func Not(a *Node) *Node {
	switch a.Op {
	case OpTrue:
		return nFalse
	case OpFalse:
		return nTrue
	case OpNot:
		return a.Args[0]
	}
	return &Node{Op: OpNot, Args: []*Node{a}}
}

// Xor returns a XOR b, folding constant operands.
func Xor(a, b *Node) *Node {
	switch {
	case a.Op == OpFalse:
		return b
	case b.Op == OpFalse:
		return a
	case a.Op == OpTrue:
		return Not(b)
	case b.Op == OpTrue:
		return Not(a)
	}
	return &Node{Op: OpXor, Args: []*Node{a, b}}
}

// Xnor returns a XNOR b (equivalence), folding constant operands.
func Xnor(a, b *Node) *Node {
	switch {
	case a.Op == OpTrue:
		return b
	case b.Op == OpTrue:
		return a
	case a.Op == OpFalse:
		return Not(b)
	case b.Op == OpFalse:
		return Not(a)
	}
	return &Node{Op: OpXnor, Args: []*Node{a, b}}
}

// Imp returns a IMPLIES b, folding constant operands.
func Imp(a, b *Node) *Node {
	switch {
	case a.Op == OpFalse, b.Op == OpTrue:
		return nTrue
	case a.Op == OpTrue:
		return b
	case b.Op == OpFalse:
		return Not(a)
	}
	return &Node{Op: OpImp, Args: []*Node{a, b}}
}

// Nand returns NOT(a AND b), folding through Not/And when an operand
// is constant.
func Nand(a, b *Node) *Node {
	if a.Op == OpTrue || a.Op == OpFalse || b.Op == OpTrue || b.Op == OpFalse {
		return Not(And(a, b))
	}
	return &Node{Op: OpNand, Args: []*Node{a, b}}
}

// Nor returns NOT(a OR b), folding through Not/Or when an operand is
// constant.
func Nor(a, b *Node) *Node {
	if a.Op == OpTrue || a.Op == OpFalse || b.Op == OpTrue || b.Op == OpFalse {
		return Not(Or(a, b))
	}
	return &Node{Op: OpNor, Args: []*Node{a, b}}
}

// ITE returns if-then-else: c ? t : e, folding constant conditions and
// constant branches (into And/Or/Imp shapes) and the degenerate t == e
// case.
func ITE(c, t, e *Node) *Node {
	switch c.Op {
	case OpTrue:
		return t
	case OpFalse:
		return e
	}
	if t == e {
		return t
	}
	switch {
	case t.Op == OpTrue:
		return Or(c, e)
	case t.Op == OpFalse:
		return And(Not(c), e)
	case e.Op == OpTrue:
		return Imp(c, t)
	case e.Op == OpFalse:
		return And(c, t)
	}
	return &Node{Op: OpITE, Args: []*Node{c, t, e}}
}

// Decl is one model declaration. Order is semantically significant:
// variables enter the BDD in declaration order, and the good list is
// the declaration-ordered conjunct sequence the ICI engines consume.
type Decl interface{ isDecl() }

// Param records a named model parameter (width, depth, a seeded-bug
// flag...). Parameters do not affect Instantiate — the model is already
// elaborated — but they are part of the canonical form, document the
// construction, and let registries reconstruct the builder call.
type Param struct {
	Name  string
	Value string
}

// Input declares one or more primary-input bits.
type Input struct {
	Names []string
}

// State declares a state bit with its scalar initial value; Next is
// its next-state function (set after construction by builders, present
// in every valid model).
type State struct {
	Name string
	Init bool
	Next *Node
}

// Constraint is an environment assumption over state and input
// variables; all constraints are conjoined.
type Constraint struct {
	Expr *Node
}

// Good is one property conjunct of the implicit conjunction.
type Good struct {
	Expr *Node
}

// Goal is the optional monolithic property. When present it becomes
// verify.Problem.Good directly — distinct from the good list, which
// may be empty (an unpartitioned property) or a strengthening
// partition (assisting invariants). At most one per model.
type Goal struct {
	Expr *Node
}

// Dep declares a functional dependency: state variable Name is always
// equal to Def over the reachable states (the FD engine's input).
type Dep struct {
	Name string
	Def  *Node
}

func (*Param) isDecl()      {}
func (*Input) isDecl()      {}
func (*State) isDecl()      {}
func (*Constraint) isDecl() {}
func (*Good) isDecl()       {}
func (*Goal) isDecl()       {}
func (*Dep) isDecl()        {}

// Model is a complete manager-independent verification model: the
// declarations in order. The zero value is an empty (invalid) model.
type Model struct {
	Name  string
	Decls []Decl
}

// Params returns the declared parameters in order as a name → value
// map (later declarations win on duplicates, which Validate rejects
// anyway).
func (mo *Model) Params() map[string]string {
	out := map[string]string{}
	for _, d := range mo.Decls {
		if p, ok := d.(*Param); ok {
			out[p.Name] = p.Value
		}
	}
	return out
}

// States returns the state declarations in order.
func (mo *Model) States() []*State {
	var out []*State
	for _, d := range mo.Decls {
		if s, ok := d.(*State); ok {
			out = append(out, s)
		}
	}
	return out
}

// Inputs returns the declared input names in order.
func (mo *Model) Inputs() []string {
	var out []string
	for _, d := range mo.Decls {
		if in, ok := d.(*Input); ok {
			out = append(out, in.Names...)
		}
	}
	return out
}

// Goods counts the property conjuncts.
func (mo *Model) Goods() int {
	n := 0
	for _, d := range mo.Decls {
		if _, ok := d.(*Good); ok {
			n++
		}
	}
	return n
}

// validName reports whether a name can survive the canonical text
// round trip: non-empty, no s-expression delimiters, not a constant,
// and not in the reserved '$' namespace Format uses for def bindings.
func validName(name string) bool {
	if name == "" || name == "true" || name == "false" {
		return false
	}
	if strings.HasPrefix(name, "$") {
		return false
	}
	return !strings.ContainsAny(name, " \t\n\r();")
}

// Validate checks the model statically: well-formed unique names, a
// next function on every state, declared variables only, correct
// operator arities, at least one property (good or goal), at most one
// goal, and deps naming declared states. A model that validates will
// Instantiate on any fresh manager (resource limits aside).
func (mo *Model) Validate() error {
	declared := map[string]bool{}
	states := map[string]bool{}
	params := map[string]bool{}
	goals := 0
	for _, d := range mo.Decls {
		switch d := d.(type) {
		case *Param:
			if d.Name == "" || strings.ContainsAny(d.Name, " \t\n\r();") ||
				d.Value == "" || strings.ContainsAny(d.Value, " \t\n\r();") {
				return fmt.Errorf("ir: malformed param %q=%q", d.Name, d.Value)
			}
			if params[d.Name] {
				return fmt.Errorf("ir: duplicate param %q", d.Name)
			}
			params[d.Name] = true
		case *Input:
			for _, n := range d.Names {
				if !validName(n) {
					return fmt.Errorf("ir: invalid variable name %q", n)
				}
				if declared[n] {
					return fmt.Errorf("ir: duplicate variable %q", n)
				}
				declared[n] = true
			}
		case *State:
			if !validName(d.Name) {
				return fmt.Errorf("ir: invalid variable name %q", d.Name)
			}
			if declared[d.Name] {
				return fmt.Errorf("ir: duplicate variable %q", d.Name)
			}
			declared[d.Name] = true
			states[d.Name] = true
		case *Goal:
			goals++
		}
	}
	if len(states) == 0 {
		return fmt.Errorf("ir: model has no state bits")
	}
	if mo.Goods()+goals == 0 {
		return fmt.Errorf("ir: model has no property (good or goal)")
	}
	if goals > 1 {
		return fmt.Errorf("ir: model has %d goal declarations, at most one allowed", goals)
	}

	checked := map[*Node]bool{}
	var check func(n *Node) error
	check = func(n *Node) error {
		if n == nil {
			return fmt.Errorf("ir: nil expression node")
		}
		if checked[n] {
			return nil
		}
		checked[n] = true
		want, known := opArity[n.Op]
		if !known {
			return fmt.Errorf("ir: unknown operator %q", n.Op)
		}
		if want >= 0 && len(n.Args) != want {
			return fmt.Errorf("ir: %s takes %d arguments, got %d", n.Op, want, len(n.Args))
		}
		if want < 0 && len(n.Args) < 2 {
			return fmt.Errorf("ir: %s node with %d arguments is not fold-normal", n.Op, len(n.Args))
		}
		if n.Op == OpVar {
			if !declared[n.Name] {
				return fmt.Errorf("ir: undeclared variable %q", n.Name)
			}
		} else if n.Name != "" {
			return fmt.Errorf("ir: non-variable node with a name %q", n.Name)
		}
		// Fold-normality: the constructors never leave a constant
		// argument, a double negation, or a degenerate ite in place, and
		// the canonical form relies on that (re-lowering the printed text
		// must reproduce the DAG exactly).
		for _, a := range n.Args {
			if a != nil && (a.Op == OpTrue || a.Op == OpFalse) {
				return fmt.Errorf("ir: %s node with a constant argument is not fold-normal", n.Op)
			}
		}
		if n.Op == OpNot && n.Args[0] != nil && n.Args[0].Op == OpNot {
			return fmt.Errorf("ir: double negation is not fold-normal")
		}
		if n.Op == OpITE && len(n.Args) == 3 && n.Args[1] == n.Args[2] {
			return fmt.Errorf("ir: ite with identical branches is not fold-normal")
		}
		for _, a := range n.Args {
			if err := check(a); err != nil {
				return err
			}
		}
		return nil
	}

	for _, d := range mo.Decls {
		switch d := d.(type) {
		case *State:
			if d.Next == nil {
				return fmt.Errorf("ir: state %q has no next-state function", d.Name)
			}
			if err := check(d.Next); err != nil {
				return err
			}
		case *Constraint:
			if err := check(d.Expr); err != nil {
				return err
			}
		case *Good:
			if err := check(d.Expr); err != nil {
				return err
			}
		case *Goal:
			if err := check(d.Expr); err != nil {
				return err
			}
		case *Dep:
			if !states[d.Name] {
				return fmt.Errorf("ir: dep of undeclared state %q", d.Name)
			}
			if err := check(d.Def); err != nil {
				return err
			}
		}
	}
	return nil
}
