package ir

import (
	"fmt"
	"strings"
)

// Format renders the model as canonical source text in the lang
// surface syntax extended with (param ...), (goal ...), (dep ...), and
// (def ...) forms. Shared subgraphs — any operator node referenced
// more than once — are serialized once as numbered def bindings
// ($0, $1, ...) emitted before the declarations, in first-use
// post-order, so the text stays linear in the DAG size (a nested adder
// tree would otherwise print exponentially).
//
// The output is a fixed point: parsing it back (lang.ParseModel →
// ToIR) reproduces the DAG including its sharing, and re-Formatting
// reproduces the text byte for byte. That is what makes the canonical
// form safe to hash as a content address shared by Go-built and
// text-built models.
func (mo *Model) Format() string {
	// First pass: reference counts over the whole declaration list.
	// Every pointer occurrence counts; children are walked only on
	// first sight so the count is the in-degree, not the path count.
	refs := map[*Node]int{}
	var count func(n *Node)
	count = func(n *Node) {
		refs[n]++
		if refs[n] > 1 {
			return
		}
		for _, a := range n.Args {
			count(a)
		}
	}
	for _, root := range mo.exprs() {
		count(root)
	}

	// Second pass: emit defs for shared operator nodes in post-order
	// (dependencies first), assigning stable $k names as bodies print.
	names := map[*Node]string{}
	var defs strings.Builder
	var emit func(n *Node)
	emit = func(n *Node) {
		if n.Op == OpVar || n.Op == OpTrue || n.Op == OpFalse {
			return
		}
		if _, done := names[n]; done {
			return
		}
		for _, a := range n.Args {
			emit(a)
		}
		if refs[n] >= 2 {
			body := formatNode(n, names, true)
			name := fmt.Sprintf("$%d", len(names))
			fmt.Fprintf(&defs, "(def %s %s)\n", name, body)
			names[n] = name
		}
	}
	for _, root := range mo.exprs() {
		emit(root)
	}

	var b strings.Builder
	b.WriteString(defs.String())
	for _, d := range mo.Decls {
		switch d := d.(type) {
		case *Param:
			fmt.Fprintf(&b, "(param %s %s)\n", d.Name, d.Value)
		case *Input:
			b.WriteString("(input")
			for _, n := range d.Names {
				b.WriteByte(' ')
				b.WriteString(n)
			}
			b.WriteString(")\n")
		case *State:
			init := "0"
			if d.Init {
				init = "1"
			}
			fmt.Fprintf(&b, "(state %s :init %s :next %s)\n", d.Name, init, formatNode(d.Next, names, false))
		case *Constraint:
			fmt.Fprintf(&b, "(constraint %s)\n", formatNode(d.Expr, names, false))
		case *Good:
			fmt.Fprintf(&b, "(good %s)\n", formatNode(d.Expr, names, false))
		case *Goal:
			fmt.Fprintf(&b, "(goal %s)\n", formatNode(d.Expr, names, false))
		case *Dep:
			fmt.Fprintf(&b, "(dep %s %s)\n", d.Name, formatNode(d.Def, names, false))
		}
	}
	return b.String()
}

// String renders the model as canonical source (same as Format).
func (mo *Model) String() string { return mo.Format() }

// exprs yields the declaration expressions in declaration order — the
// traversal order both Format passes and ToIR agree on.
func (mo *Model) exprs() []*Node {
	var out []*Node
	for _, d := range mo.Decls {
		switch d := d.(type) {
		case *State:
			if d.Next != nil {
				out = append(out, d.Next)
			}
		case *Constraint:
			out = append(out, d.Expr)
		case *Good:
			out = append(out, d.Expr)
		case *Goal:
			out = append(out, d.Expr)
		case *Dep:
			out = append(out, d.Def)
		}
	}
	return out
}

// formatNode prints one node, substituting def names for shared
// subgraphs. asDefBody suppresses the name lookup on the node itself
// (a def body prints its own structure, with its children named).
func formatNode(n *Node, names map[*Node]string, asDefBody bool) string {
	if !asDefBody {
		if name, ok := names[n]; ok {
			return name
		}
	}
	switch n.Op {
	case OpVar:
		return n.Name
	case OpTrue:
		return "true"
	case OpFalse:
		return "false"
	}
	parts := make([]string, 0, len(n.Args)+1)
	parts = append(parts, n.Op)
	for _, a := range n.Args {
		parts = append(parts, formatNode(a, names, false))
	}
	return "(" + strings.Join(parts, " ") + ")"
}
