package ir_test

import (
	"testing"

	"repro/internal/bdd"
	"repro/internal/ir"
	"repro/internal/verify"
	"repro/internal/zoo"
)

// buildZoo fetches one small member per parameterized family; these
// replicate components by construction, so the isomorphism pass must
// fire on them.
func buildZoo(t *testing.T, entry string, size zoo.Size) *ir.Model {
	t.Helper()
	mo, err := zoo.Build(entry, size)
	if err != nil {
		t.Fatal(err)
	}
	return mo
}

// TestIsoInstantiateMatchesBaseline: the template-and-Transfer pass is
// transparent — every function of the instantiated problem equals the
// one direct evaluation builds. The two paths run on separate managers
// (construction order differs, so raw Ref values may too); equality is
// checked by transferring the baseline onto the iso manager, where
// canonicity makes function equality Ref equality.
func TestIsoInstantiateMatchesBaseline(t *testing.T) {
	members := []struct {
		entry string
		size  zoo.Size
	}{
		{"fifo", zoo.Size{"width": 3, "depth": 2, "bound": 5}},
		{"network", zoo.Size{"procs": 2}},
		{"filter", zoo.Size{"depth": 4, "width": 2}},
		{"pipeline", zoo.Size{"regs": 2, "width": 2}},
		{"coherence", zoo.Size{"caches": 2}},
		{"elevator", zoo.Size{"floors": 3}},
	}
	for _, mb := range members {
		mb := mb
		t.Run(mb.entry, func(t *testing.T) {
			mo := buildZoo(t, mb.entry, mb.size)

			for _, shared := range []bool{false, true} {
				var ma, mbase *bdd.Manager
				if shared {
					ma = bdd.NewShared(2, 14)
				} else {
					ma = bdd.New()
				}
				mbase = bdd.New()

				pIso, err := mo.Instantiate(ma)
				if err != nil {
					t.Fatal(err)
				}
				pBase, err := mo.InstantiateNoIso(mbase)
				if err != nil {
					t.Fatal(err)
				}

				same := func(what string, a, b bdd.Ref) {
					if got := bdd.Transfer(ma, mbase, b, nil); got != a {
						t.Errorf("shared=%v: %s differs between iso and baseline instantiation", shared, what)
					}
				}
				same("init", pIso.Machine.Init(), pBase.Machine.Init())
				same("constraint", pIso.Machine.InputConstraint(), pBase.Machine.InputConstraint())
				same("goal", pIso.Good, pBase.Good)
				if len(pIso.GoodList) != len(pBase.GoodList) {
					t.Fatalf("shared=%v: good-list lengths differ", shared)
				}
				for i := range pIso.GoodList {
					same("good conjunct", pIso.GoodList[i], pBase.GoodList[i])
				}
				curA, curB := pIso.Machine.CurVars(), pBase.Machine.CurVars()
				if len(curA) != len(curB) {
					t.Fatalf("shared=%v: state-bit counts differ", shared)
				}
				for i, v := range curA {
					same("next-state function", pIso.Machine.NextFn(v), pBase.Machine.NextFn(curB[i]))
				}
			}
		})
	}
}

// TestIsoClassesDetected: families that replicate components with
// nontrivial next-state logic produce classes, and a family whose
// replicas are bare shift wires (one-node DAGs, cheaper to evaluate
// directly than to template) produces none.
func TestIsoClassesDetected(t *testing.T) {
	for _, e := range []struct {
		entry string
		size  zoo.Size
	}{
		{"network", zoo.Size{"procs": 3}},
		{"filter", zoo.Size{"depth": 4, "width": 2}},
	} {
		e := e
		t.Run(e.entry, func(t *testing.T) {
			mo := buildZoo(t, e.entry, e.size)
			classes, err := ir.IsoClasses(mo)
			if err != nil {
				t.Fatal(err)
			}
			if len(classes) == 0 {
				t.Fatalf("no isomorphism classes found in replicated %s", e.entry)
			}
			best := 0
			for _, c := range classes {
				if len(c.States) > best {
					best = len(c.States)
				}
				if len(c.States) < 2 {
					t.Errorf("class with %d member(s) reported: %+v", len(c.States), c)
				}
			}
			if best < 2 {
				t.Fatalf("largest class has %d members, want >= 2", best)
			}
		})
	}

	// The FIFO's data cells are one-node shift wires: below the
	// templating threshold by design, so no class may fire.
	mo := buildZoo(t, "fifo", zoo.Size{"width": 4, "depth": 3, "bound": 7})
	classes, err := ir.IsoClasses(mo)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 0 {
		t.Errorf("wire-only FIFO reported %d classes, want none", len(classes))
	}
}

// TestIsoVerdictUnchanged: end to end, an instantiation that went
// through the template pass verifies exactly like the baseline.
func TestIsoVerdictUnchanged(t *testing.T) {
	mo := buildZoo(t, "fifo", zoo.Size{"width": 3, "depth": 2, "bound": 5})

	pIso := mo.MustInstantiate(bdd.New())
	mbase := bdd.New()
	pBase, err := mo.InstantiateNoIso(mbase)
	if err != nil {
		t.Fatal(err)
	}
	for _, meth := range []verify.Method{verify.Forward, verify.XICI, verify.PDR} {
		a := verify.Run(pIso, meth, verify.Options{})
		b := verify.Run(pBase, meth, verify.Options{})
		if a.Outcome != b.Outcome || a.Iterations != b.Iterations {
			t.Errorf("%s: iso (%v, %d iter) vs baseline (%v, %d iter)",
				meth, a.Outcome, a.Iterations, b.Outcome, b.Iterations)
		}
	}
}
