package ir

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bdd"
)

// Isomorphism-exploiting instantiation. The zoo's parameterized
// families replicate components by construction — every cell of a FIFO
// stage, every stage of a pipeline — so their partitioned transition
// relations contain many next-state DAGs that are identical up to a
// renaming of their support variables. Instead of evaluating each
// replica into BDDs independently, Instantiate canonicalizes every
// state bit's next-state expression into a shape signature, groups the
// bits whose signatures (and whose supports' relative variable order)
// match, builds one template BDD per class on a scratch manager, and
// stamps out each member with bdd.Transfer under the member's variable
// map. Because Transfer rebuilds by ITE on the destination, the
// transferred Ref is bit-identical to what direct evaluation would
// produce — the pass changes construction effort, never results, and
// behaves identically on per-worker and shared managers.

// isoMinNodes is the smallest DAG worth templating: below this the
// direct evaluation is cheaper than a scratch manager plus a Transfer.
const isoMinNodes = 4

// isoShape is the canonical form of one expression DAG up to variable
// renaming: operators serialize positionally, revisited shared nodes by
// their visit-order id, and variables by first-occurrence index. Two
// DAGs with equal signatures are isomorphic — equal after mapping the
// i-th distinct variable of one to the i-th of the other.
type isoShape struct {
	sig     string
	support []string // distinct variable names in first-occurrence order
	nodes   int      // DAG vertices visited (shared nodes once)
}

func nextSignature(n *Node) isoShape {
	var b strings.Builder
	ids := map[*Node]int{}
	varIdx := map[string]int{}
	var support []string
	var walk func(n *Node)
	walk = func(n *Node) {
		if id, ok := ids[n]; ok {
			fmt.Fprintf(&b, "#%d", id)
			return
		}
		ids[n] = len(ids)
		switch n.Op {
		case OpVar:
			idx, ok := varIdx[n.Name]
			if !ok {
				idx = len(varIdx)
				varIdx[n.Name] = idx
				support = append(support, n.Name)
			}
			fmt.Fprintf(&b, "v%d", idx)
		case OpTrue, OpFalse:
			b.WriteString(n.Op)
		default:
			b.WriteString(n.Op)
			b.WriteByte('(')
			for i, a := range n.Args {
				if i > 0 {
					b.WriteByte(',')
				}
				walk(a)
			}
			b.WriteByte(')')
		}
	}
	walk(n)
	return isoShape{sig: b.String(), support: support, nodes: len(ids)}
}

// isoRanks returns, for each support variable, its rank in the concrete
// level order of the destination manager. Members of a class are only
// interchangeable when these patterns match: the template is built with
// its variables declared in rank order, so a matching member's variable
// map is monotone in levels and the Transfer rebuild stays linear.
func isoRanks(support []string, vars map[string]bdd.Var) []int {
	order := make([]int, len(support))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return vars[support[order[a]]] < vars[support[order[b]]]
	})
	ranks := make([]int, len(support))
	for r, j := range order {
		ranks[j] = r
	}
	return ranks
}

// isoGroup is one set of states whose next-state DAGs are isomorphic
// and rank-compatible; members carries (state, shape) pairs in
// declaration order.
type isoGroup struct {
	shape   isoShape
	ranks   []int
	members []*State
	shapes  []isoShape
}

// isoGroups partitions the states by signature and rank pattern,
// preserving declaration order within and across groups.
func isoGroups(states []*State, vars map[string]bdd.Var) []*isoGroup {
	index := map[string]*isoGroup{}
	var groups []*isoGroup
	for _, s := range states {
		sh := nextSignature(s.Next)
		ranks := isoRanks(sh.support, vars)
		key := fmt.Sprintf("%s|%v", sh.sig, ranks)
		g, ok := index[key]
		if !ok {
			g = &isoGroup{shape: sh, ranks: ranks}
			index[key] = g
			groups = append(groups, g)
		}
		g.members = append(g.members, s)
		g.shapes = append(g.shapes, sh)
	}
	return groups
}

// seedIsoMemo builds one template BDD per isomorphism class of at least
// two members and seeds the instantiation memo with the per-member
// Transfer results, so the evaluation loop finds every replicated
// next-state function already built.
func seedIsoMemo(m *bdd.Manager, states []*State, vars map[string]bdd.Var, memo map[*Node]bdd.Ref) {
	for _, g := range isoGroups(states, vars) {
		if len(g.members) < 2 || g.shape.nodes < isoMinNodes {
			continue
		}
		// Scratch manager with the template variables declared in rank
		// order, so template levels mirror the members' concrete order.
		scratch := bdd.New()
		scratchVar := make([]bdd.Var, len(g.shape.support))
		byRank := make([]int, len(g.shape.support))
		for j, r := range g.ranks {
			byRank[r] = j
		}
		for r := 0; r < len(byRank); r++ {
			j := byRank[r]
			scratchVar[j] = scratch.NewVar(fmt.Sprintf("t%d", j))
		}
		tmpl := evalOnScratch(scratch, g.members[0].Next, scratchVar, g.shape.support)

		for i, s := range g.members {
			if _, done := memo[s.Next]; done {
				continue // two bits sharing one Next DAG
			}
			varMap := make([]bdd.Var, len(scratchVar))
			for j, name := range g.shapes[i].support {
				varMap[scratchVar[j]] = vars[name]
			}
			memo[s.Next] = bdd.Transfer(m, scratch, tmpl, varMap)
		}
	}
}

// evalOnScratch evaluates the representative's DAG on the scratch
// manager, reading each variable through its template index.
func evalOnScratch(m *bdd.Manager, root *Node, scratchVar []bdd.Var, support []string) bdd.Ref {
	varIdx := make(map[string]int, len(support))
	for i, name := range support {
		varIdx[name] = i
	}
	memo := map[*Node]bdd.Ref{}
	var eval func(n *Node) bdd.Ref
	eval = func(n *Node) bdd.Ref {
		if r, ok := memo[n]; ok {
			return r
		}
		var r bdd.Ref
		switch n.Op {
		case OpTrue:
			r = bdd.One
		case OpFalse:
			r = bdd.Zero
		case OpVar:
			r = m.VarRef(scratchVar[varIdx[n.Name]])
		case OpNot:
			r = eval(n.Args[0]).Not()
		case OpAnd:
			args := make([]bdd.Ref, len(n.Args))
			for i, a := range n.Args {
				args[i] = eval(a)
			}
			r = m.AndN(args...)
		case OpOr:
			args := make([]bdd.Ref, len(n.Args))
			for i, a := range n.Args {
				args[i] = eval(a)
			}
			r = m.OrN(args...)
		case OpXor:
			r = m.Xor(eval(n.Args[0]), eval(n.Args[1]))
		case OpXnor:
			r = m.Xnor(eval(n.Args[0]), eval(n.Args[1]))
		case OpImp:
			r = m.Imp(eval(n.Args[0]), eval(n.Args[1]))
		case OpNand:
			r = m.Nand(eval(n.Args[0]), eval(n.Args[1]))
		case OpNor:
			r = m.Nor(eval(n.Args[0]), eval(n.Args[1]))
		case OpITE:
			r = m.ITE(eval(n.Args[0]), eval(n.Args[1]), eval(n.Args[2]))
		default:
			panic(fmt.Sprintf("ir: unreachable operator %q past Validate", n.Op))
		}
		memo[n] = r
		return r
	}
	return eval(root)
}

// IsoClass describes one isomorphism class Instantiate exploits: at
// least two state bits whose next-state DAGs are identical up to
// variable renaming (with level-order-compatible supports) and large
// enough to template.
type IsoClass struct {
	// States are the member state bits, declaration order.
	States []string
	// Vars is the template's support size; Nodes its DAG vertex count.
	Vars  int
	Nodes int
}

// IsoClasses reports the isomorphism classes of the model's next-state
// functions that Instantiate templates — the observability hook behind
// the replication findings in EXPERIMENTS.md. Variable ranks are
// computed against a model-order declaration, exactly as Instantiate
// declares them.
func IsoClasses(mo *Model) ([]IsoClass, error) {
	if err := mo.Validate(); err != nil {
		return nil, err
	}
	// Mirror Instantiate's declaration order with synthetic levels: each
	// state bit takes two (current + next), inputs one.
	vars := map[string]bdd.Var{}
	var states []*State
	level := 0
	for _, d := range mo.Decls {
		switch d := d.(type) {
		case *Input:
			for _, n := range d.Names {
				vars[n] = bdd.Var(level)
				level++
			}
		case *State:
			vars[d.Name] = bdd.Var(level)
			level += 2
			states = append(states, d)
		}
	}
	var out []IsoClass
	for _, g := range isoGroups(states, vars) {
		if len(g.members) < 2 || g.shape.nodes < isoMinNodes {
			continue
		}
		cls := IsoClass{Vars: len(g.shape.support), Nodes: g.shape.nodes}
		for _, s := range g.members {
			cls.States = append(cls.States, s.Name)
		}
		out = append(out, cls)
	}
	return out, nil
}
