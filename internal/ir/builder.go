package ir

import "fmt"

// Builder constructs a Model imperatively, the way the Go model
// constructors are written: declare bits (declaration order is variable
// order — interleave by declaring interleaved), assign next-state
// functions, add constraints, goods, a goal, and deps, then Build.
// Variables are handled as their *Node references, so expression code
// reads exactly like the manager-based original with Refs replaced by
// nodes.
type Builder struct {
	model  Model
	vars   map[string]*Node
	states map[*Node]*State
}

// NewBuilder starts an empty model with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		model:  Model{Name: name},
		vars:   map[string]*Node{},
		states: map[*Node]*State{},
	}
}

// Param records a named parameter.
func (b *Builder) Param(name, value string) {
	b.model.Decls = append(b.model.Decls, &Param{Name: name, Value: value})
}

// ParamInt records an integer parameter.
func (b *Builder) ParamInt(name string, v int) { b.Param(name, fmt.Sprintf("%d", v)) }

// ParamBool records a boolean parameter.
func (b *Builder) ParamBool(name string, v bool) { b.Param(name, fmt.Sprintf("%t", v)) }

func (b *Builder) declare(name string) *Node {
	if _, dup := b.vars[name]; dup {
		panic(fmt.Sprintf("ir: duplicate variable %q", name))
	}
	n := Var(name)
	b.vars[name] = n
	return n
}

// Input declares a primary-input bit and returns its reference node.
func (b *Builder) Input(name string) *Node {
	n := b.declare(name)
	b.model.Decls = append(b.model.Decls, &Input{Names: []string{name}})
	return n
}

// Inputs declares n input bits named prefix0..prefix(n-1) as one
// declaration group.
func (b *Builder) Inputs(prefix string, n int) []*Node {
	decl := &Input{}
	out := make([]*Node, n)
	for i := range out {
		name := fmt.Sprintf("%s%d", prefix, i)
		out[i] = b.declare(name)
		decl.Names = append(decl.Names, name)
	}
	b.model.Decls = append(b.model.Decls, decl)
	return out
}

// State declares a state bit with its initial value and returns its
// reference node. Its next-state function is assigned later with
// SetNext.
func (b *Builder) State(name string, init bool) *Node {
	n := b.declare(name)
	st := &State{Name: name, Init: init}
	b.states[n] = st
	b.model.Decls = append(b.model.Decls, st)
	return n
}

// States declares n state bits named prefix0..prefix(n-1), all with
// the given initial value.
func (b *Builder) States(prefix string, n int, init bool) []*Node {
	out := make([]*Node, n)
	for i := range out {
		out[i] = b.State(fmt.Sprintf("%s%d", prefix, i), init)
	}
	return out
}

// SetNext assigns the next-state function of a declared state bit.
func (b *Builder) SetNext(v *Node, f *Node) {
	st, ok := b.states[v]
	if !ok {
		panic(fmt.Sprintf("ir: SetNext of non-state node %s", v.Name))
	}
	st.Next = f
}

// SetInit overrides the initial value of a declared state bit —
// for generators that only learn initial values after wiring the
// next-state functions (the fuzzer's random machines draw them last).
func (b *Builder) SetInit(v *Node, init bool) {
	st, ok := b.states[v]
	if !ok {
		panic(fmt.Sprintf("ir: SetInit of non-state node %s", v.Name))
	}
	st.Init = init
}

// NextFn returns the next-state function already assigned to a state
// bit — the hook models with functionally-derived state (the coherence
// directory) use to reuse transition expressions.
func (b *Builder) NextFn(v *Node) *Node {
	st, ok := b.states[v]
	if !ok || st.Next == nil {
		panic(fmt.Sprintf("ir: no next-state function for %s", v.Name))
	}
	return st.Next
}

// Constrain adds an environment assumption.
func (b *Builder) Constrain(f *Node) {
	b.model.Decls = append(b.model.Decls, &Constraint{Expr: f})
}

// Good appends one property conjunct.
func (b *Builder) Good(f *Node) {
	b.model.Decls = append(b.model.Decls, &Good{Expr: f})
}

// Goal sets the monolithic property (at most once; Validate enforces).
func (b *Builder) Goal(f *Node) {
	b.model.Decls = append(b.model.Decls, &Goal{Expr: f})
}

// Dep declares a functional dependency for a state bit.
func (b *Builder) Dep(v *Node, def *Node) {
	if _, ok := b.states[v]; !ok {
		panic(fmt.Sprintf("ir: Dep of non-state node %s", v.Name))
	}
	b.model.Decls = append(b.model.Decls, &Dep{Name: v.Name, Def: def})
}

// Build validates and returns the model. It panics on validation
// failure: builder misuse is a bug in the calling constructor, exactly
// like the legacy constructors' config panics.
func (b *Builder) Build() *Model {
	mo := b.model
	if err := mo.Validate(); err != nil {
		panic(err)
	}
	return &mo
}
