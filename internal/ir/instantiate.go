package ir

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/fsm"
	"repro/internal/verify"
)

// Instantiate elaborates the model on the given manager: it declares
// the variables in declaration order, evaluates the expression DAG
// (memoized per node, so shared subgraphs are built once), assembles
// the machine, and seals it. It is the single place any frontend turns
// IR into BDDs, and it behaves identically on per-worker and shared
// managers — the result is a function of the declaration order alone,
// by BDD canonicity.
//
// Replicated next-state functions — state bits whose DAGs are
// isomorphic up to variable renaming, the signature of the zoo's
// parameterized families — are built once per isomorphism class on a
// scratch manager and stamped out with bdd.Transfer (see iso.go). The
// pass is transparent: by canonicity every Ref equals what direct
// evaluation would build.
func (mo *Model) Instantiate(m *bdd.Manager) (verify.Problem, error) {
	return mo.instantiate(m, true)
}

// InstantiateNoIso elaborates without the isomorphism-exploiting
// template pass — the baseline every iso test and ablation compares
// against. Results are Ref-identical to Instantiate; only construction
// effort differs.
func (mo *Model) InstantiateNoIso(m *bdd.Manager) (verify.Problem, error) {
	return mo.instantiate(m, false)
}

func (mo *Model) instantiate(m *bdd.Manager, useIso bool) (verify.Problem, error) {
	if err := mo.Validate(); err != nil {
		return verify.Problem{}, err
	}

	ma := fsm.New(m)
	vars := map[string]bdd.Var{}
	var states []*State
	for _, d := range mo.Decls {
		switch d := d.(type) {
		case *Input:
			for _, n := range d.Names {
				vars[n] = ma.NewInputBit(n)
			}
		case *State:
			vars[d.Name] = ma.NewStateBit(d.Name)
			states = append(states, d)
		}
	}

	memo := map[*Node]bdd.Ref{}
	if useIso {
		seedIsoMemo(m, states, vars, memo)
	}
	var eval func(n *Node) bdd.Ref
	eval = func(n *Node) bdd.Ref {
		if r, ok := memo[n]; ok {
			return r
		}
		var r bdd.Ref
		switch n.Op {
		case OpTrue:
			r = bdd.One
		case OpFalse:
			r = bdd.Zero
		case OpVar:
			r = m.VarRef(vars[n.Name])
		case OpNot:
			r = eval(n.Args[0]).Not()
		case OpAnd:
			args := make([]bdd.Ref, len(n.Args))
			for i, a := range n.Args {
				args[i] = eval(a)
			}
			r = m.AndN(args...)
		case OpOr:
			args := make([]bdd.Ref, len(n.Args))
			for i, a := range n.Args {
				args[i] = eval(a)
			}
			r = m.OrN(args...)
		case OpXor:
			r = m.Xor(eval(n.Args[0]), eval(n.Args[1]))
		case OpXnor:
			r = m.Xnor(eval(n.Args[0]), eval(n.Args[1]))
		case OpImp:
			r = m.Imp(eval(n.Args[0]), eval(n.Args[1]))
		case OpNand:
			r = m.Nand(eval(n.Args[0]), eval(n.Args[1]))
		case OpNor:
			r = m.Nor(eval(n.Args[0]), eval(n.Args[1]))
		case OpITE:
			r = m.ITE(eval(n.Args[0]), eval(n.Args[1]), eval(n.Args[2]))
		default:
			panic(fmt.Sprintf("ir: unreachable operator %q past Validate", n.Op))
		}
		memo[n] = r
		return r
	}

	initSet := bdd.One
	for _, s := range states {
		ma.SetNext(vars[s.Name], eval(s.Next))
		lit := m.VarRef(vars[s.Name])
		if !s.Init {
			lit = lit.Not()
		}
		initSet = m.And(initSet, lit)
	}
	ma.SetInit(initSet)

	var goodList []bdd.Ref
	var deps []verify.Dependency
	goal := bdd.One
	for _, d := range mo.Decls {
		switch d := d.(type) {
		case *Constraint:
			ma.AddInputConstraint(eval(d.Expr))
		case *Good:
			goodList = append(goodList, eval(d.Expr))
		case *Goal:
			goal = eval(d.Expr)
		case *Dep:
			deps = append(deps, verify.Dependency{Var: vars[d.Name], Def: eval(d.Def)})
		}
	}
	if err := ma.Seal(); err != nil {
		return verify.Problem{}, err
	}
	return verify.Problem{
		Machine:  ma,
		Good:     goal,
		GoodList: goodList,
		Deps:     deps,
		Name:     mo.Name,
	}, nil
}

// MustInstantiate is Instantiate for callers that treat failure as a
// bug — the legacy New* constructor shims.
func (mo *Model) MustInstantiate(m *bdd.Manager) verify.Problem {
	p, err := mo.Instantiate(m)
	if err != nil {
		panic(err)
	}
	return p
}
