package ir

import "fmt"

// Word is the IR counterpart of expr.Word: a little-endian bit vector
// of expression nodes denoting an unsigned integer. The operations
// mirror internal/expr exactly (same adders, same comparator chains),
// so a model ported from the manager-based constructors computes the
// same Boolean functions bit for bit.
type Word []*Node

// WordOf wraps explicit bits (LSB first) as a Word.
func WordOf(bits ...*Node) Word { return Word(bits) }

// FromNodes builds a word from variable (or any) nodes, LSB first.
func FromNodes(bits []*Node) Word { return append(Word(nil), bits...) }

// ConstWord builds a width-bit constant word; it panics if the value
// does not fit, which in model-building code is always a bug worth
// failing fast on.
func ConstWord(value uint64, width int) Word {
	if width < 64 && value>>uint(width) != 0 {
		panic(fmt.Sprintf("ir: constant %d does not fit in %d bits", value, width))
	}
	w := make(Word, width)
	for i := range w {
		w[i] = Bool(value&(1<<uint(i)) != 0)
	}
	return w
}

// Width returns the number of bits.
func (w Word) Width() int { return len(w) }

// Bit returns the i-th bit (LSB = 0).
func (w Word) Bit(i int) *Node { return w[i] }

// Extend zero-extends to width (panics on narrowing — use Truncate).
func (w Word) Extend(width int) Word {
	if width < w.Width() {
		panic("ir: Extend cannot narrow; use Truncate")
	}
	out := append(Word(nil), w...)
	for len(out) < width {
		out = append(out, nFalse)
	}
	return out
}

// Truncate keeps the low width bits.
func (w Word) Truncate(width int) Word {
	if width > w.Width() {
		panic("ir: Truncate cannot widen; use Extend")
	}
	return append(Word(nil), w[:width]...)
}

func (w Word) sameWidth(o Word, op string) {
	if w.Width() != o.Width() {
		panic(fmt.Sprintf("ir: %s of %d-bit and %d-bit words", op, w.Width(), o.Width()))
	}
}

// AddCarry returns the width-preserving sum of a, b and the carry-in,
// plus the carry-out — a ripple-carry adder.
func AddCarry(a, b Word, cin *Node) (Word, *Node) {
	a.sameWidth(b, "AddCarry")
	out := make(Word, a.Width())
	carry := cin
	for i := range out {
		x, y := a[i], b[i]
		out[i] = Xor(Xor(x, y), carry)
		carry = Or(And(x, y), And(carry, Or(x, y)))
	}
	return out, carry
}

// AddW returns a + b modulo 2^width.
func AddW(a, b Word) Word {
	s, _ := AddCarry(a, b, nFalse)
	return s
}

// AddExpand returns a + b at full precision (width+1 bits).
func AddExpand(a, b Word) Word {
	s, cout := AddCarry(a, b, nFalse)
	return append(s, cout)
}

// SubW returns a - b modulo 2^width (two's complement).
func SubW(a, b Word) Word {
	a.sameWidth(b, "SubW")
	nb := make(Word, b.Width())
	for i, bit := range b {
		nb[i] = Not(bit)
	}
	s, _ := AddCarry(a, nb, nTrue)
	return s
}

// IncW returns a + 1 modulo 2^width.
func IncW(a Word) Word { return AddW(a, ConstWord(1, a.Width())) }

// DecW returns a - 1 modulo 2^width.
func DecW(a Word) Word { return SubW(a, ConstWord(1, a.Width())) }

// EqW returns the predicate a == b.
func EqW(a, b Word) *Node {
	a.sameWidth(b, "EqW")
	acc := nTrue
	for i := range a {
		acc = And(acc, Xnor(a[i], b[i]))
		if acc.False() {
			break
		}
	}
	return acc
}

// EqListW returns the per-bit equality predicates of a and b — the
// natural implicit-conjunction partition of a word equality.
func EqListW(a, b Word) []*Node {
	a.sameWidth(b, "EqListW")
	out := make([]*Node, a.Width())
	for i := range a {
		out[i] = Xnor(a[i], b[i])
	}
	return out
}

// NeW returns the predicate a != b.
func NeW(a, b Word) *Node { return Not(EqW(a, b)) }

// EqConstW returns the predicate a == value.
func EqConstW(a Word, value uint64) *Node {
	return EqW(a, ConstWord(value, a.Width()))
}

// LtW returns the unsigned predicate a < b.
func LtW(a, b Word) *Node {
	a.sameWidth(b, "LtW")
	lt := nFalse
	for i := 0; i < a.Width(); i++ { // LSB to MSB: higher bits dominate
		x, y := a[i], b[i]
		lt = ITE(Xnor(x, y), lt, y)
	}
	return lt
}

// LeW returns the unsigned predicate a <= b.
func LeW(a, b Word) *Node { return Not(LtW(b, a)) }

// LeConstW returns the predicate a <= value.
func LeConstW(a Word, value uint64) *Node {
	return LeW(a, ConstWord(value, a.Width()))
}

// MuxW returns sel ? a : b, bitwise.
func MuxW(sel *Node, a, b Word) Word {
	a.sameWidth(b, "MuxW")
	out := make(Word, a.Width())
	for i := range out {
		out[i] = ITE(sel, a[i], b[i])
	}
	return out
}

// ShrW returns a logically shifted right by k bits (zero fill).
func ShrW(a Word, k int) Word {
	out := make(Word, a.Width())
	for i := range out {
		if i+k < a.Width() {
			out[i] = a[i+k]
		} else {
			out[i] = nFalse
		}
	}
	return out
}

// ShlW returns a shifted left by k bits (zero fill), modulo 2^width.
func ShlW(a Word, k int) Word {
	out := make(Word, a.Width())
	for i := range out {
		if i-k >= 0 {
			out[i] = a[i-k]
		} else {
			out[i] = nFalse
		}
	}
	return out
}

// PopCountW returns the number of true predicates among flags, as a
// word of just enough bits to hold len(flags).
func PopCountW(flags []*Node) Word {
	width := 1
	for (1<<uint(width))-1 < len(flags) {
		width++
	}
	acc := ConstWord(0, width)
	for _, f := range flags {
		one := make(Word, width)
		one[0] = f
		for i := 1; i < width; i++ {
			one[i] = nFalse
		}
		acc = AddW(acc, one)
	}
	return acc
}
