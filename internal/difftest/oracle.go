package difftest

// The brute-force oracle: explicit-state breadth-first search over the
// machine's concrete state space, evaluating every BDD through bdd.Eval
// only — no image computation, no fixpoints, no implicit conjunction —
// so its verdict is algorithmically independent of every engine under
// test. Exponential in the bit counts; the caps keep it to a few
// thousand states.

// OracleVerdict is the explicit-state search's answer.
type OracleVerdict struct {
	// Decided is false when the instance exceeded the caps and the
	// oracle abstained (the engines are still cross-checked against
	// each other).
	Decided bool `json:"decided"`

	// Violated reports whether a reachable state breaks the property.
	Violated bool `json:"violated"`

	// Depth is the length of the shortest violating path (0 = an
	// initial state already violates). Meaningful when Violated.
	Depth int `json:"depth,omitempty"`

	// States is the number of distinct reachable states explored.
	States int `json:"states,omitempty"`
}

// Oracle runs the explicit search on inst, abstaining beyond
// maxStateBits/maxInputBits (defaults 12 and 6 when zero).
func Oracle(inst Instance, maxStateBits, maxInputBits int) OracleVerdict {
	if maxStateBits <= 0 {
		maxStateBits = 12
	}
	if maxInputBits <= 0 {
		maxInputBits = 6
	}
	ma := inst.Machine
	sb, ib := ma.StateBits(), ma.InputBits()
	if sb > maxStateBits || ib > maxInputBits {
		return OracleVerdict{}
	}

	m := ma.M
	nvars := m.NumVars()
	cur := ma.CurVars()
	ins := ma.InputVars()
	goods := inst.goodList()
	constraint := ma.InputConstraint()

	// pack/unpack a concrete state <-> its index in the 2^sb space.
	pack := func(asg []bool) uint32 {
		var k uint32
		for i, v := range cur {
			if asg[v] {
				k |= 1 << uint(i)
			}
		}
		return k
	}
	unpack := func(k uint32, asg []bool) {
		for i, v := range cur {
			asg[v] = k&(1<<uint(i)) != 0
		}
	}
	bad := func(asg []bool) bool {
		for _, g := range goods {
			if !m.Eval(g, asg) {
				return true
			}
		}
		return false
	}

	visited := make([]bool, 1<<uint(sb))
	type node struct {
		state uint32
		depth int
	}
	var queue []node

	// Seed the frontier with every initial state.
	asg := make([]bool, nvars)
	init := ma.Init()
	for k := uint32(0); k < 1<<uint(sb); k++ {
		unpack(k, asg)
		if m.Eval(init, asg) && !visited[k] {
			visited[k] = true
			queue = append(queue, node{k, 0})
		}
	}

	explored := 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		explored++
		unpack(n.state, asg)
		for i := range ins {
			asg[ins[i]] = false
		}
		if bad(asg) {
			// BFS order: the first violating dequeue is at the
			// shortest depth.
			return OracleVerdict{Decided: true, Violated: true, Depth: n.depth, States: explored}
		}
		for in := uint32(0); in < 1<<uint(ib); in++ {
			unpack(n.state, asg)
			for i, v := range ins {
				asg[v] = in&(1<<uint(i)) != 0
			}
			if !m.Eval(constraint, asg) {
				continue // no such transition
			}
			next, err := ma.Step(asg)
			if err != nil {
				continue
			}
			k := pack(next)
			if !visited[k] {
				visited[k] = true
				queue = append(queue, node{k, n.depth + 1})
			}
		}
	}
	return OracleVerdict{Decided: true, States: explored}
}
