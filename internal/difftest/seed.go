package difftest

import (
	"encoding/json"
	"fmt"
	"os"
)

// SeedSchema identifies the seed-file format. Bump on incompatible
// Params changes; Load rejects anything else.
const SeedSchema = "icifuzz/seed/v1"

// SeedFile is the on-disk reproduction recipe for one instance: replay
// with `icifuzz -replay <file>` or load it into the difftest corpus.
type SeedFile struct {
	Schema string `json:"schema"`
	Params Params `json:"params"`

	// Note records why the seed was saved (the divergence messages of
	// the run that produced it). Informational only.
	Note string `json:"note,omitempty"`
}

// WriteSeed writes sf to path as indented JSON, stamping the schema.
func WriteSeed(path string, sf SeedFile) error {
	sf.Schema = SeedSchema
	b, err := json.MarshalIndent(sf, "", "  ")
	if err != nil {
		return fmt.Errorf("difftest: encoding seed: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadSeed reads and validates a seed file.
func LoadSeed(path string) (SeedFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return SeedFile{}, err
	}
	var sf SeedFile
	if err := json.Unmarshal(b, &sf); err != nil {
		return SeedFile{}, fmt.Errorf("difftest: %s: %w", path, err)
	}
	if sf.Schema != SeedSchema {
		return SeedFile{}, fmt.Errorf("difftest: %s: schema %q, want %q", path, sf.Schema, SeedSchema)
	}
	return sf, nil
}
