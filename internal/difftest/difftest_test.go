package difftest

import (
	"bytes"
	"flag"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/verify"
)

// -difftest.n raises the smoke-test instance count (CI runs 500; the
// default keeps `go test ./...` fast).
var nFlag = flag.Int("difftest.n", 40, "instances for the differential smoke test")

// TestDifferentialSmoke is the harness's main self-check: n seeded
// random instances, every engine and ablation, zero divergences. Both
// verdicts must occur across the campaign or the generator went inert.
func TestDifferentialSmoke(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	verified, violated := 0, 0
	for i := 0; i < *nFlag; i++ {
		params := RandomParams(rng)
		inst, err := Generate(params)
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		rep := RunInstance(inst, Config{})
		if rep.Divergent() {
			t.Fatalf("instance %d diverged:\n%s", i, rep.NDJSON())
		}
		if rep.Oracle != nil && rep.Oracle.Violated {
			violated++
		} else if rep.Oracle != nil {
			verified++
		}
	}
	if verified == 0 || violated == 0 {
		t.Errorf("degenerate campaign: %d verified, %d violated", verified, violated)
	}
}

// TestReportsDeterministic: generating and running the same Params twice
// must produce byte-identical NDJSON — the property that makes seed
// files a complete reproduction recipe.
func TestReportsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 8; i++ {
		params := RandomParams(rng)
		var lines [2][]byte
		for round := range lines {
			inst, err := Generate(params)
			if err != nil {
				t.Fatal(err)
			}
			lines[round] = RunInstance(inst, Config{}).NDJSON()
		}
		if !bytes.Equal(lines[0], lines[1]) {
			t.Fatalf("params %+v: reports differ:\n%s%s", params, lines[0], lines[1])
		}
	}
}

// TestOracleAgreesWithForward cross-checks the explicit-state oracle
// against the symbolic forward engine directly — the two references of
// the differential driver must themselves agree.
func TestOracleAgreesWithForward(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 25; i++ {
		params := Params{
			Seed:      rng.Int63(),
			Kind:      KindRandom,
			StateBits: 2 + rng.Intn(4),
			InputBits: 1 + rng.Intn(2),
			Terms:     1 + rng.Intn(3),
			Parts:     1,
		}
		inst, err := Generate(params)
		if err != nil {
			t.Fatal(err)
		}
		ov := Oracle(inst, 0, 0)
		if !ov.Decided {
			t.Fatalf("oracle abstained on %d state bits", params.StateBits)
		}
		res := verify.Run(inst.Problem, verify.Forward, verify.Options{})
		wantViolated := res.Outcome == verify.Violated
		if ov.Violated != wantViolated {
			t.Fatalf("instance %d: oracle violated=%v, Forward says %v", i, ov.Violated, res.Outcome)
		}
		if ov.Violated && ov.Depth != res.ViolationDepth {
			t.Fatalf("instance %d: oracle depth %d, Forward depth %d", i, ov.Depth, res.ViolationDepth)
		}
	}
}

// TestInjectedBugCaughtAndShrunk is the harness's negative control: with
// a deliberately lying engine injected, the driver must flag a
// divergence, the shrinker must reduce it to a minimal instance that
// still diverges, and the seed file must round-trip.
func TestInjectedBugCaughtAndShrunk(t *testing.T) {
	cfg := Config{Engines: InjectBuggyEngine()}

	// Find an instance the buggy engine lies about: any violation at
	// depth >= 1. A bugged two-slot FIFO violates at its depth.
	params := Params{Seed: 11, Kind: KindFIFO, Width: 2, Depth: 2, Bug: true}
	inst, err := Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	rep := RunInstance(inst, cfg)
	if !rep.Divergent() {
		t.Fatalf("injected bug not caught:\n%s", rep.NDJSON())
	}

	shrunk := Shrink(params, cfg, 0)
	sInst, err := Generate(shrunk)
	if err != nil {
		t.Fatalf("shrunk params invalid: %+v: %v", shrunk, err)
	}
	if !RunInstance(sInst, cfg).Divergent() {
		t.Fatalf("shrunk params no longer diverge: %+v", shrunk)
	}
	if shrunk.Width > params.Width || shrunk.Depth > params.Depth {
		t.Errorf("shrinker grew the instance: %+v -> %+v", params, shrunk)
	}
	if shrunk.Width != 1 || shrunk.Depth != 1 {
		t.Errorf("shrinker left a non-minimal instance: %+v", shrunk)
	}

	// Seed-file round trip.
	path := filepath.Join(t.TempDir(), "shrunk.json")
	if err := WriteSeed(path, SeedFile{Params: shrunk, Note: "injected-bug self test"}); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSeed(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Params != shrunk {
		t.Errorf("seed round trip changed params: %+v -> %+v", shrunk, loaded.Params)
	}
	rInst, err := Generate(loaded.Params)
	if err != nil {
		t.Fatal(err)
	}
	if !RunInstance(rInst, cfg).Divergent() {
		t.Error("replayed seed no longer diverges")
	}
}

// TestConstGoodInstances: the constant-conjunct knob must not change any
// verdict — it exercises the degenerate-denominator path of the greedy
// scorers end to end.
func TestConstGoodInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 6; i++ {
		params := RandomParams(rng)
		params.Kind = KindRandom
		if params.StateBits == 0 {
			params.StateBits = 3
		}
		params.ConstGood = true
		inst, err := Generate(params)
		if err != nil {
			t.Fatal(err)
		}
		if rep := RunInstance(inst, Config{}); rep.Divergent() {
			t.Fatalf("const-good instance %d diverged:\n%s", i, rep.NDJSON())
		}
	}
}
