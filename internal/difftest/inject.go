package difftest

import (
	"sync"

	"repro/internal/verify"
)

// Self-test of the harness: a deliberately broken engine that the
// differential driver must catch. It wraps the forward engine and lies
// about any violation found deeper than the surface — the shape of a
// real termination bug (declaring convergence one iteration early).

// BuggyMethod is the registry name of the injected engine.
const BuggyMethod verify.Method = "BuggyFwd"

var injectOnce sync.Once

// InjectBuggyEngine registers BuggyMethod (idempotently) and returns an
// EngineSpec list of the default engines plus the buggy one. A fuzz run
// over this list must report divergences on every instance whose
// property fails at depth >= 1 — if it does not, the harness itself is
// broken.
func InjectBuggyEngine() []EngineSpec {
	injectOnce.Do(func() {
		fwd, ok := verify.Lookup(verify.Forward)
		if !ok {
			panic("difftest: forward engine not registered")
		}
		verify.RegisterFunc(BuggyMethod, func(c *verify.Ctx, p verify.Problem, opt verify.Options) verify.Result {
			res := fwd.Run(c, p, opt)
			if res.Outcome == verify.Violated && res.ViolationDepth >= 1 {
				// The lie: deep violations are reported as proofs.
				res = verify.Result{Outcome: verify.Verified, Iterations: res.Iterations}
			}
			return res
		})
	})
	return append(DefaultEngines(), EngineSpec{Name: string(BuggyMethod), Method: BuggyMethod})
}
