package difftest

// Delta-debugging shrinker: given divergent Params, greedily search for
// smaller Params that still diverge, one dimension at a time, until a
// fixpoint. "Smaller" means fewer bits, fewer terms, fewer conjuncts,
// and cleared boolean knobs — the instance a human debugs first.

// shrinkStep proposes the candidate reductions of p, most aggressive
// first per dimension. Every candidate is structurally valid (Generate
// accepts it); dimensional minima are respected (filter depth stays a
// power of two >= 2, pipeline regs stay 2).
func shrinkStep(p Params) []Params {
	var out []Params
	try := func(q Params) { out = append(out, q) }

	switch p.Kind {
	case KindRandom:
		for v := 1; v < p.StateBits; v++ {
			q := p
			q.StateBits = v
			try(q)
		}
		for v := 0; v < p.InputBits; v++ {
			q := p
			q.InputBits = v
			try(q)
		}
		if p.Terms > 1 {
			q := p
			q.Terms = p.Terms - 1
			try(q)
		}
		if p.Parts > 1 {
			q := p
			q.Parts = p.Parts - 1
			try(q)
		}
		if p.Constraint {
			q := p
			q.Constraint = false
			try(q)
		}
	case KindFIFO:
		if p.Depth > 1 {
			q := p
			q.Depth = p.Depth - 1
			try(q)
		}
		if p.Width > 1 {
			q := p
			q.Width = p.Width - 1
			try(q)
		}
	case KindFilter:
		if p.Depth > 2 {
			q := p
			q.Depth = p.Depth / 2
			try(q)
		}
		if p.Width > 1 {
			q := p
			q.Width = p.Width - 1
			try(q)
		}
	case KindPipeline:
		if p.Depth > 2 {
			q := p
			q.Depth = p.Depth / 2
			try(q)
		}
		if p.Width > 1 {
			q := p
			q.Width = p.Width - 1
			try(q)
		}
	}
	if p.ConstGood {
		q := p
		q.ConstGood = false
		try(q)
	}
	if p.Assist {
		q := p
		q.Assist = false
		try(q)
	}
	if p.Shared {
		q := p
		q.Shared = false
		try(q)
	}
	return out
}

// Shrink minimizes divergent Params: it repeatedly applies the first
// candidate reduction that still produces a divergent report, until no
// reduction diverges or maxSteps generations were spent. The input is
// returned unchanged if it does not diverge itself.
func Shrink(p Params, cfg Config, maxSteps int) Params {
	check := func(q Params) bool {
		inst, err := Generate(q)
		if err != nil {
			return false
		}
		return RunInstance(inst, cfg).Divergent()
	}
	if !check(p) {
		return p
	}
	if maxSteps <= 0 {
		maxSteps = 64
	}
	cur := p
	for step := 0; step < maxSteps; step++ {
		reduced := false
		for _, q := range shrinkStep(cur) {
			if check(q) {
				cur = q
				reduced = true
				break
			}
		}
		if !reduced {
			break
		}
	}
	return cur
}
