package difftest

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/resource"
	"repro/internal/verify"
)

// Config bounds one differential run.
type Config struct {
	// Engines to run; nil means DefaultEngines().
	Engines []EngineSpec

	// MaxIterations / NodeLimit bound each engine run (0: 64
	// iterations — generous for instances this small, and what keeps a
	// diverging monolithic traversal from dominating the campaign's
	// wall time; unlimited nodes). A budget abort is never counted as a
	// divergence — only verdicts disagree.
	MaxIterations int
	NodeLimit     int

	// OracleStateBits / OracleInputBits are the explicit-search caps
	// (see Oracle).
	OracleStateBits int
	OracleInputBits int
}

// EngineSpec names one engine configuration under test: a registered
// method plus the Options ablation knobs it runs with. The name is the
// stable identity used in reports.
type EngineSpec struct {
	Name   string
	Method verify.Method
	Tune   func(*verify.Options)
	// TolerateExhausted marks configurations that may legitimately fail
	// to decide an instance the others decide: the original ICI fast
	// positional termination test (not proven to terminate), Induction
	// ("not inductive" is not a verdict), and the TermFast ablation.
	TolerateExhausted bool
}

// DefaultEngines returns every built-in engine (including PDR and its
// frame-policy ablation) plus the XICI ablation grid: each Section V
// knob (simplifier, SkipStep3, VarChoice, Workers, PairBudgetFactor,
// termination mode, GC cadence) exercised against the default
// configuration.
func DefaultEngines() []EngineSpec {
	specs := []EngineSpec{
		{Name: "Fwd", Method: verify.Forward},
		{Name: "Bkwd", Method: verify.Backward},
		{Name: "FD", Method: verify.FD},
		{Name: "ICI", Method: verify.ICI, TolerateExhausted: true},
		{Name: "XICI", Method: verify.XICI},
		{Name: "FwdID", Method: verify.ForwardID},
		{Name: "Induction", Method: verify.Induction, TolerateExhausted: true},
		{Name: "PDR", Method: verify.PDR, Tune: pdrCap},
		{Name: "PDR/nopolicy", Method: verify.PDR,
			Tune: func(o *verify.Options) {
				pdrCap(o)
				o.Core.SkipSimplify = true
				o.Core.SkipEvaluate = true
			}},

		{Name: "XICI/constrain", Method: verify.XICI,
			Tune: func(o *verify.Options) { o.Core.Simplifier = bdd.UseConstrain }},
		{Name: "XICI/skipstep3", Method: verify.XICI,
			Tune: func(o *verify.Options) { o.TermSkipStep3 = true }},
		{Name: "XICI/mostcommontop", Method: verify.XICI,
			Tune: func(o *verify.Options) { o.TermVarChoice = core.VarMostCommonTop }},
		{Name: "XICI/workers2", Method: verify.XICI,
			Tune: func(o *verify.Options) { o.Workers = 2 }},
		{Name: "XICI/sharedscore", Method: verify.XICI,
			Tune: func(o *verify.Options) { o.Workers = 2; o.SharedManager = true }},
		{Name: "XICI/pairbudget", Method: verify.XICI,
			Tune: func(o *verify.Options) { o.Core.PairBudgetFactor = 4 }},
		{Name: "XICI/implication", Method: verify.XICI,
			Tune: func(o *verify.Options) { o.Termination = verify.TermImplication }},
		{Name: "XICI/fastterm", Method: verify.XICI, TolerateExhausted: true,
			Tune: func(o *verify.Options) { o.Termination = verify.TermFast }},
		{Name: "XICI/gc2", Method: verify.XICI,
			Tune: func(o *verify.Options) { o.GCEvery = 2 }},
		{Name: "XICI/threshold1", Method: verify.XICI,
			Tune: func(o *verify.Options) { o.Core.GrowThreshold = 1.0 }},
	}
	return specs
}

// pdrCap bounds the PDR specs' node budget when the caller left the
// budget unlimited. PDR's cube-wise blocking can fail to converge on
// datapath-heavy instances (the documented filter/pipeline weakness —
// see EXPERIMENTS.md); an unbounded non-converging run then churns for
// the full 64-level iteration cap, minutes of wall-clock per instance.
// Node-limit exhaustion is deterministic and tolerated by the
// divergence rules, so capping trades nothing but wasted churn. A
// caller-supplied Config.NodeLimit wins.
func pdrCap(o *verify.Options) {
	if o.Budget.NodeLimit == 0 {
		o.Budget.NodeLimit = 250_000
	}
}

// FilterEngines keeps the specs matching any of the names. A name
// matches a spec when it equals (case-insensitively) the spec's full
// name or its base before the first "/" — so "pdr" selects both "PDR"
// and "PDR/nopolicy". An unknown name is an error, not a silent no-op:
// a typo in a CI engine list must fail the job, not shrink it.
func FilterEngines(specs []EngineSpec, names []string) ([]EngineSpec, error) {
	matched := make([]bool, len(names))
	var out []EngineSpec
	for _, spec := range specs {
		base := spec.Name
		if i := strings.IndexByte(base, '/'); i >= 0 {
			base = base[:i]
		}
		keep := false
		for j, name := range names {
			if strings.EqualFold(name, spec.Name) || strings.EqualFold(name, base) {
				matched[j] = true
				keep = true
			}
		}
		if keep {
			out = append(out, spec)
		}
	}
	for j, ok := range matched {
		if !ok {
			return nil, fmt.Errorf("difftest: no engine matches %q", names[j])
		}
	}
	return out, nil
}

// EngineVerdict is one engine's answer on one instance, reduced to the
// deterministic fields a report may carry (no timing, no memory).
type EngineVerdict struct {
	Engine   string `json:"engine"`
	Outcome  string `json:"outcome"`
	Depth    int    `json:"depth,omitempty"`
	Cause    string `json:"cause,omitempty"`
	TraceLen int    `json:"trace_len,omitempty"`
	TraceErr string `json:"trace_err,omitempty"`
}

// Report is the differential result for one instance. Divergences is
// empty on agreement; each entry is one human-readable inconsistency.
type Report struct {
	Params      Params          `json:"params"`
	Oracle      *OracleVerdict  `json:"oracle,omitempty"`
	Verdicts    []EngineVerdict `json:"verdicts"`
	Divergences []string        `json:"divergences,omitempty"`
}

// Divergent reports whether the instance exposed any inconsistency.
func (r Report) Divergent() bool { return len(r.Divergences) > 0 }

// NDJSON renders the report as one deterministic JSON line (trailing
// newline included). Equal inputs produce byte-identical lines: field
// order is fixed by the struct definitions and no timing-dependent value
// is included.
func (r Report) NDJSON() []byte {
	b, err := json.Marshal(r)
	if err != nil {
		// Reports are plain data; marshal cannot fail.
		panic("difftest: " + err.Error())
	}
	return append(b, '\n')
}

// RunInstance runs every configured engine on inst, runs the oracle, and
// cross-checks all verdicts:
//
//   - No two engines may decide differently (Verified vs Violated).
//   - Every Violated verdict must agree on the shortest depth and carry
//     a trace of exactly that length that replays cleanly through
//     Trace.Validate.
//   - The oracle's verdict, when decided, is authoritative.
//   - Exhausted is tolerated when caused by the resource budget, and for
//     engines marked TolerateExhausted; any other exhaustion diverges.
func RunInstance(inst Instance, cfg Config) Report {
	specs := cfg.Engines
	if specs == nil {
		specs = DefaultEngines()
	}
	maxIter := cfg.MaxIterations
	if maxIter == 0 {
		maxIter = 64
	}

	// Every spec runs on the instance's one manager, so an engine that
	// aborts at its node limit would otherwise leave its abandoned
	// intermediates counted against the next engine's budget — the next
	// capped spec would exhaust instantly on inherited garbage. Pin the
	// problem's structure as permanent roots (idempotent) and collect
	// between runs.
	m := inst.Problem.Machine.M
	inst.Problem.Machine.Protect()
	m.ProtectPermanent(inst.Problem.Good)
	for _, g := range inst.Problem.GoodList {
		m.ProtectPermanent(g)
	}
	for _, d := range inst.Problem.Deps {
		m.ProtectPermanent(d.Def)
	}

	rep := Report{Params: inst.Params}
	ov := Oracle(inst, cfg.OracleStateBits, cfg.OracleInputBits)
	if ov.Decided {
		rep.Oracle = &ov
	}

	type decided struct {
		name     string
		violated bool
		depth    int
	}
	var ref *decided
	if ov.Decided {
		ref = &decided{name: "oracle", violated: ov.Violated, depth: ov.Depth}
	}

	for _, spec := range specs {
		m.GC()
		opt := verify.Options{
			WantTrace: true,
			Budget: resource.Budget{
				MaxIterations: maxIter,
				NodeLimit:     cfg.NodeLimit,
			},
		}
		if spec.Tune != nil {
			spec.Tune(&opt)
		}
		res := verify.Run(inst.Problem, spec.Method, opt)

		v := EngineVerdict{Engine: spec.Name, Outcome: res.Outcome.String(), Cause: res.Cause()}
		if res.Outcome == verify.Violated {
			v.Depth = res.ViolationDepth
			if res.Trace == nil {
				v.TraceErr = "no trace produced"
			} else {
				v.TraceLen = res.Trace.Len()
				if err := res.Trace.Validate(inst.Machine, inst.goodList()); err != nil {
					v.TraceErr = err.Error()
				} else if res.Trace.Len() != res.ViolationDepth {
					v.TraceErr = fmt.Sprintf("trace length %d != violation depth %d", res.Trace.Len(), res.ViolationDepth)
				}
			}
			if v.TraceErr != "" {
				rep.Divergences = append(rep.Divergences,
					fmt.Sprintf("%s: violated but trace unusable: %s", spec.Name, v.TraceErr))
			}
		}
		rep.Verdicts = append(rep.Verdicts, v)

		switch res.Outcome {
		case verify.Exhausted:
			switch res.Cause() {
			case "node-limit", "deadline", "canceled", "iteration-cap":
				// Budget abort: not a verdict, not a divergence.
			default:
				if !spec.TolerateExhausted {
					rep.Divergences = append(rep.Divergences,
						fmt.Sprintf("%s: exhausted without a budget cause: %s", spec.Name, res.Why))
				}
			}
		case verify.Verified, verify.Violated:
			d := decided{name: spec.Name, violated: res.Outcome == verify.Violated, depth: res.ViolationDepth}
			if ref == nil {
				ref = &d
				continue
			}
			if d.violated != ref.violated {
				rep.Divergences = append(rep.Divergences,
					fmt.Sprintf("%s says %s, %s says %s", d.name, outcomeWord(d.violated), ref.name, outcomeWord(ref.violated)))
			} else if d.violated && d.depth != ref.depth {
				rep.Divergences = append(rep.Divergences,
					fmt.Sprintf("%s finds depth %d, %s finds depth %d", d.name, d.depth, ref.name, ref.depth))
			}
		}
	}
	sort.Strings(rep.Divergences)
	return rep
}

func outcomeWord(violated bool) string {
	if violated {
		return "violated"
	}
	return "verified"
}
