// Package difftest is the differential fuzzing harness for the verify
// engines: it generates small seeded FSM + safety-property instances,
// runs every engine on each one, and compares the verdicts against each
// other and against a brute-force explicit-state oracle. Divergences are
// minimized by a delta-debugging shrinker into replayable seed files
// (see cmd/icifuzz).
//
// Everything in the package is deterministic in Params: the same Params
// value always produces the same instance, the same verdicts, and the
// same report bytes — timing never enters a report. That is what makes a
// seed file a complete reproduction recipe.
package difftest

import (
	"fmt"
	"math/rand"

	"repro/internal/bdd"
	"repro/internal/fsm"
	"repro/internal/models"
	"repro/internal/verify"
)

// Instance kinds. Random machines probe the engine algebra broadly;
// the model mutations probe the paper's benchmark circuits (datapath
// constraints, assisting invariants, seeded bugs) at oracle-checkable
// sizes.
const (
	KindRandom   = "random"
	KindFIFO     = "fifo"
	KindFilter   = "filter"
	KindPipeline = "pipeline"
)

// Params is the complete, JSON-serializable recipe for one instance.
// Generate is a pure function of this value. Fields are interpreted per
// Kind; irrelevant fields are ignored so the shrinker can zero them.
type Params struct {
	Seed int64  `json:"seed"`
	Kind string `json:"kind"`

	// Random-machine shape (KindRandom).
	StateBits  int  `json:"state_bits,omitempty"`
	InputBits  int  `json:"input_bits,omitempty"`
	Terms      int  `json:"terms,omitempty"`      // DNF terms per next-state function
	Parts      int  `json:"parts,omitempty"`      // good-list partition size (>= 1)
	Constraint bool `json:"constraint,omitempty"` // add a random input-literal constraint

	// ConstGood appends a constant-True conjunct to the partition,
	// exercising the normalization and degenerate-denominator paths of
	// the evaluation policy (any Kind).
	ConstGood bool `json:"const_good,omitempty"`

	// Model-mutation shape (KindFIFO, KindFilter, KindPipeline).
	Depth  int  `json:"depth,omitempty"`  // fifo depth / filter window / pipeline regs
	Width  int  `json:"width,omitempty"`  // fifo item bits / filter sample bits / pipeline datapath bits
	Bug    bool `json:"bug,omitempty"`    // seed the model's bug
	Assist bool `json:"assist,omitempty"` // user assisting partition

	// Shared builds the instance on a shared-memory concurrent manager
	// (bdd.NewShared), so every engine's run — images through the Par*
	// entry points, the sharedscore ablation's concurrent pair scoring —
	// exercises the sharded table and striped cache under the same
	// differential cross-check as the sequential manager (any Kind).
	// Verdict-level determinism is preserved: canonicity makes the
	// traversal's functions identical, and reports carry no Refs.
	Shared bool `json:"shared,omitempty"`
}

// Instance is one generated verification task. The Problem and Machine
// live on their own fresh Manager.
type Instance struct {
	Params  Params
	Problem verify.Problem
	Machine *fsm.Machine
}

// Generate builds the instance described by p on a fresh manager. It is
// deterministic: equal Params yield structurally identical instances
// (same variables in the same order, same Refs).
func Generate(p Params) (Instance, error) {
	// Two workers is enough to make the shared manager actually fork
	// inside Par* operations while keeping per-instance overhead small
	// at fuzzing sizes.
	var m *bdd.Manager
	if p.Shared {
		m = bdd.NewShared(2, 14)
	} else {
		m = bdd.New()
	}
	var prob verify.Problem
	switch p.Kind {
	case KindRandom:
		if p.StateBits < 1 || p.InputBits < 0 {
			return Instance{}, fmt.Errorf("difftest: random machine needs state_bits >= 1 (got %+v)", p)
		}
		prob = genRandom(m, p)
	case KindFIFO:
		if p.Width < 1 || p.Depth < 1 {
			return Instance{}, fmt.Errorf("difftest: fifo needs width, depth >= 1 (got %+v)", p)
		}
		cfg := models.FIFOConfig{
			Width: p.Width,
			Depth: p.Depth,
			// Half-range bound keeps the type constraint non-trivial at
			// any width (the paper's 8-bit/128 shape, scaled down; at
			// width 1 items must be 0, and the bug lets 1 in).
			Bound: 1<<(uint(p.Width)-1) - 1,
			Bug:   p.Bug,
		}
		prob = models.NewFIFO(m, cfg)
	case KindFilter:
		d := p.Depth
		if d < 2 || d&(d-1) != 0 {
			return Instance{}, fmt.Errorf("difftest: filter depth must be a power of two >= 2 (got %d)", d)
		}
		if p.Width < 1 {
			return Instance{}, fmt.Errorf("difftest: filter needs width >= 1 (got %+v)", p)
		}
		prob = models.NewFilter(m, models.FilterConfig{
			Depth: d, SampleWidth: p.Width, Assist: p.Assist, Bug: p.Bug,
		})
	case KindPipeline:
		if p.Depth < 1 || p.Width < 1 {
			return Instance{}, fmt.Errorf("difftest: pipeline needs depth (regs), width >= 1 (got %+v)", p)
		}
		prob = models.NewPipeline(m, models.PipelineConfig{
			Regs: p.Depth, Width: p.Width, Assist: p.Assist, Bug: p.Bug,
		})
	default:
		return Instance{}, fmt.Errorf("difftest: unknown kind %q", p.Kind)
	}
	if p.ConstGood {
		gl := prob.GoodList
		if len(gl) == 0 {
			gl = []bdd.Ref{prob.Good}
		}
		// Copy, never alias a model's shared slice.
		prob.GoodList = append(append([]bdd.Ref(nil), gl...), bdd.One)
	}
	if len(prob.GoodList) > 0 {
		// A differential instance must pose the same question to every
		// engine. The assisted models supply a partition strictly
		// stronger than the monolithic property (the assisting
		// invariants), so on a bugged model the implicit engines would
		// legitimately find a shallower violation than the monolithic
		// ones. Re-derive Good from the partition; at these sizes the
		// conjunction the implicit methods avoid is cheap to build.
		prob.Good = m.AndN(prob.GoodList...)
	}
	prob.Name = fmt.Sprintf("%s/seed=%d", p.Kind, p.Seed)
	return Instance{Params: p, Problem: prob, Machine: prob.Machine}, nil
}

// goodList returns the instance's property partition, falling back to
// the monolithic singleton — the list trace validation replays against.
func (i Instance) goodList() []bdd.Ref {
	if len(i.Problem.GoodList) > 0 {
		return i.Problem.GoodList
	}
	return []bdd.Ref{i.Problem.Good}
}

// genRandom mirrors the cross-validation generator of the verify tests:
// next-state functions are random k-term DNFs over all bits, the initial
// state is a single random state, and the property is the complement of
// a sparse random cube, partitioned into Parts conjuncts whose
// conjunction is exactly the property.
func genRandom(m *bdd.Manager, p Params) verify.Problem {
	rng := rand.New(rand.NewSource(p.Seed))
	ma := fsm.New(m)

	state := make([]bdd.Var, p.StateBits)
	inputs := make([]bdd.Var, p.InputBits)
	for i := range state {
		state[i] = ma.NewStateBit("")
	}
	for i := range inputs {
		inputs[i] = ma.NewInputBit("")
	}
	all := append(append([]bdd.Var(nil), state...), inputs...)

	terms := p.Terms
	if terms < 1 {
		terms = 3
	}
	randFn := func() bdd.Ref {
		f := bdd.Zero
		for t := 0; t < terms; t++ {
			cube := bdd.One
			for _, v := range all {
				switch rng.Intn(3) {
				case 0:
					cube = m.And(cube, m.VarRef(v))
				case 1:
					cube = m.And(cube, m.NVarRef(v))
				}
			}
			f = m.Or(f, cube)
		}
		return f
	}
	for _, s := range state {
		ma.SetNext(s, randFn())
	}

	if p.Constraint && len(inputs) > 0 {
		// A single input literal: always satisfiable, so no state
		// deadlocks; it halves the enabled input space.
		v := inputs[rng.Intn(len(inputs))]
		if rng.Intn(2) == 0 {
			ma.AddInputConstraint(m.VarRef(v))
		} else {
			ma.AddInputConstraint(m.NVarRef(v))
		}
	}

	initLits := make([]bdd.Lit, len(state))
	for i, s := range state {
		initLits[i] = bdd.Lit{Var: s, Val: rng.Intn(2) == 1}
	}
	ma.SetInit(m.CubeRef(initLits))
	ma.MustSeal()

	// Property: complement of a sparse random set, so it holds on most
	// states and both verdicts occur across seeds.
	badCube := bdd.One
	for _, s := range state {
		switch rng.Intn(3) {
		case 0:
			badCube = m.And(badCube, m.VarRef(s))
		case 1:
			badCube = m.And(badCube, m.NVarRef(s))
		}
	}
	good := badCube.Not()

	parts := p.Parts
	if parts < 1 {
		parts = 1
	}
	goodList := []bdd.Ref{good}
	for k := 1; k < parts; k++ {
		// Each extra conjunct is implied by good, so the conjunction of
		// the partition is exactly good.
		v := state[rng.Intn(len(state))]
		lit := m.VarRef(v)
		if rng.Intn(2) == 0 {
			lit = lit.Not()
		}
		goodList = append(goodList, m.Or(good, lit))
	}

	return verify.Problem{Machine: ma, Good: good, GoodList: goodList}
}

// RandomParams draws a random instance recipe: mostly random machines at
// oracle-checkable sizes, with a steady minority of mutated benchmark
// models. The instance seed is drawn from rng too, so a single icifuzz
// master seed determines the whole campaign.
func RandomParams(rng *rand.Rand) Params {
	p := Params{Seed: rng.Int63()}
	switch rng.Intn(10) {
	case 0: // fifo mutation
		p.Kind = KindFIFO
		p.Width = 1 + rng.Intn(2)
		p.Depth = 1 + rng.Intn(3)
		p.Bug = rng.Intn(2) == 0
	case 1: // filter mutation
		p.Kind = KindFilter
		p.Depth = 2 << rng.Intn(2) // 2 or 4
		p.Width = 1
		p.Assist = rng.Intn(2) == 0
		p.Bug = rng.Intn(3) == 0
	case 2: // pipeline mutation
		p.Kind = KindPipeline
		p.Depth = 2
		p.Width = 1 + rng.Intn(2)
		p.Assist = rng.Intn(2) == 0
		p.Bug = rng.Intn(3) == 0
	default:
		p.Kind = KindRandom
		p.StateBits = 2 + rng.Intn(5)
		p.InputBits = 1 + rng.Intn(3)
		p.Terms = 1 + rng.Intn(4)
		p.Parts = 1 + rng.Intn(3)
		p.Constraint = rng.Intn(4) == 0
		p.ConstGood = rng.Intn(8) == 0
	}
	// A quarter of every kind runs on the shared-memory concurrent
	// manager, cross-checking it against the sequential one and the
	// oracle throughout the campaign.
	p.Shared = rng.Intn(4) == 0
	return p
}
