// Package difftest is the differential fuzzing harness for the verify
// engines: it generates small seeded FSM + safety-property instances,
// runs every engine on each one, and compares the verdicts against each
// other and against a brute-force explicit-state oracle. Divergences are
// minimized by a delta-debugging shrinker into replayable seed files
// (see cmd/icifuzz).
//
// Everything in the package is deterministic in Params: the same Params
// value always produces the same instance, the same verdicts, and the
// same report bytes — timing never enters a report. That is what makes a
// seed file a complete reproduction recipe.
package difftest

import (
	"fmt"
	"math/rand"

	"repro/internal/bdd"
	"repro/internal/fsm"
	"repro/internal/fsmtk"
	"repro/internal/ir"
	"repro/internal/models"
	"repro/internal/verify"
)

// Instance kinds. Random machines probe the engine algebra broadly;
// the model mutations probe the paper's benchmark circuits (datapath
// constraints, assisting invariants, seeded bugs) at oracle-checkable
// sizes; fsm instances replay imported FSM-toolkit machines through
// the same differential driver.
const (
	KindRandom   = "random"
	KindFIFO     = "fifo"
	KindFilter   = "filter"
	KindPipeline = "pipeline"
	KindFSM      = "fsm"
)

// Params is the complete, JSON-serializable recipe for one instance.
// Generate is a pure function of this value. Fields are interpreted per
// Kind; irrelevant fields are ignored so the shrinker can zero them.
type Params struct {
	Seed int64  `json:"seed"`
	Kind string `json:"kind"`

	// Random-machine shape (KindRandom).
	StateBits  int  `json:"state_bits,omitempty"`
	InputBits  int  `json:"input_bits,omitempty"`
	Terms      int  `json:"terms,omitempty"`      // DNF terms per next-state function
	Parts      int  `json:"parts,omitempty"`      // good-list partition size (>= 1)
	Constraint bool `json:"constraint,omitempty"` // add a random input-literal constraint

	// ConstGood appends a constant-True conjunct to the partition,
	// exercising the normalization and degenerate-denominator paths of
	// the evaluation policy (any Kind).
	ConstGood bool `json:"const_good,omitempty"`

	// Model-mutation shape (KindFIFO, KindFilter, KindPipeline).
	Depth  int  `json:"depth,omitempty"`  // fifo depth / filter window / pipeline regs
	Width  int  `json:"width,omitempty"`  // fifo item bits / filter sample bits / pipeline datapath bits
	Bug    bool `json:"bug,omitempty"`    // seed the model's bug
	Assist bool `json:"assist,omitempty"` // user assisting partition

	// FSM is the inline FSM-toolkit `.fsm` JSON source (KindFSM): the
	// seed file carries the whole machine, so it replays anywhere.
	FSM string `json:"fsm,omitempty"`

	// Shared builds the instance on a shared-memory concurrent manager
	// (bdd.NewShared), so every engine's run — images through the Par*
	// entry points, the sharedscore ablation's concurrent pair scoring —
	// exercises the sharded table and striped cache under the same
	// differential cross-check as the sequential manager (any Kind).
	// Verdict-level determinism is preserved: canonicity makes the
	// traversal's functions identical, and reports carry no Refs.
	Shared bool `json:"shared,omitempty"`
}

// Instance is one generated verification task. The Problem and Machine
// live on their own fresh Manager; Model is the manager-independent IR
// it was instantiated from, so the same instance can replay on any
// manager mode.
type Instance struct {
	Params  Params
	Model   *ir.Model
	Problem verify.Problem
	Machine *fsm.Machine
}

// BuildModel is the pure half of Generate: it lowers Params to the
// manager-independent IR without touching any manager. The IR already
// reflects the ConstGood normalization and the partition-derived goal,
// so instantiating it on any manager poses the identical question.
func BuildModel(p Params) (*ir.Model, error) {
	var mo *ir.Model
	switch p.Kind {
	case KindRandom:
		if p.StateBits < 1 || p.InputBits < 0 {
			return nil, fmt.Errorf("difftest: random machine needs state_bits >= 1 (got %+v)", p)
		}
		mo = genRandom(p)
	case KindFIFO:
		if p.Width < 1 || p.Depth < 1 {
			return nil, fmt.Errorf("difftest: fifo needs width, depth >= 1 (got %+v)", p)
		}
		mo = models.BuildFIFO(models.FIFOConfig{
			Width: p.Width,
			Depth: p.Depth,
			// Half-range bound keeps the type constraint non-trivial at
			// any width (the paper's 8-bit/128 shape, scaled down; at
			// width 1 items must be 0, and the bug lets 1 in).
			Bound: 1<<(uint(p.Width)-1) - 1,
			Bug:   p.Bug,
		})
	case KindFilter:
		d := p.Depth
		if d < 2 || d&(d-1) != 0 {
			return nil, fmt.Errorf("difftest: filter depth must be a power of two >= 2 (got %d)", d)
		}
		if p.Width < 1 {
			return nil, fmt.Errorf("difftest: filter needs width >= 1 (got %+v)", p)
		}
		mo = models.BuildFilter(models.FilterConfig{
			Depth: d, SampleWidth: p.Width, Assist: p.Assist, Bug: p.Bug,
		})
	case KindPipeline:
		if p.Depth < 1 || p.Width < 1 {
			return nil, fmt.Errorf("difftest: pipeline needs depth (regs), width >= 1 (got %+v)", p)
		}
		mo = models.BuildPipeline(models.PipelineConfig{
			Regs: p.Depth, Width: p.Width, Assist: p.Assist, Bug: p.Bug,
		})
	case KindFSM:
		if p.FSM == "" {
			return nil, fmt.Errorf("difftest: fsm kind needs inline .fsm source")
		}
		var err error
		mo, err = fsmtk.Import([]byte(p.FSM))
		if err != nil {
			return nil, fmt.Errorf("difftest: %w", err)
		}
	default:
		return nil, fmt.Errorf("difftest: unknown kind %q", p.Kind)
	}
	finishModel(mo, p)
	mo.Name = fmt.Sprintf("%s/seed=%d", p.Kind, p.Seed)
	return mo, nil
}

// finishModel applies the instance-level property normalizations in IR:
// the optional constant-True conjunct, and the re-derivation of the
// monolithic goal from the partition. A differential instance must pose
// the same question to every engine: the assisted models supply a
// partition strictly stronger than the monolithic property, so on a
// bugged model the implicit engines would legitimately find a shallower
// violation than the monolithic ones. With the goal re-derived as the
// conjunction of the partition (cheap at these sizes), verdict and
// depth must agree.
func finishModel(mo *ir.Model, p Params) {
	var goods []*ir.Node
	goalIdx := -1
	var goal *ir.Node
	for i, d := range mo.Decls {
		switch d := d.(type) {
		case *ir.Good:
			goods = append(goods, d.Expr)
		case *ir.Goal:
			goalIdx, goal = i, d.Expr
		}
	}
	if p.ConstGood {
		if len(goods) == 0 && goal != nil {
			// Promote the monolithic goal to a singleton partition so
			// the constant lands in a list, as the engines consume it.
			mo.Decls = append(mo.Decls, &ir.Good{Expr: goal})
			goods = append(goods, goal)
		}
		mo.Decls = append(mo.Decls, &ir.Good{Expr: ir.Bool(true)})
		goods = append(goods, ir.Bool(true))
	}
	if len(goods) > 0 {
		g := ir.And(goods...)
		if goalIdx >= 0 {
			mo.Decls[goalIdx] = &ir.Goal{Expr: g}
		} else {
			mo.Decls = append(mo.Decls, &ir.Goal{Expr: g})
		}
	}
}

// Generate builds the instance described by p on a fresh manager. It is
// deterministic: equal Params yield structurally identical instances
// (same variables in the same order, same Refs).
func Generate(p Params) (Instance, error) {
	mo, err := BuildModel(p)
	if err != nil {
		return Instance{}, err
	}
	// Two workers is enough to make the shared manager actually fork
	// inside Par* operations while keeping per-instance overhead small
	// at fuzzing sizes.
	var m *bdd.Manager
	if p.Shared {
		m = bdd.NewShared(2, 14)
	} else {
		m = bdd.New()
	}
	prob, err := mo.Instantiate(m)
	if err != nil {
		return Instance{}, fmt.Errorf("difftest: instantiating %s: %w", mo.Name, err)
	}
	return Instance{Params: p, Model: mo, Problem: prob, Machine: prob.Machine}, nil
}

// goodList returns the instance's property partition, falling back to
// the monolithic singleton — the list trace validation replays against.
func (i Instance) goodList() []bdd.Ref {
	if len(i.Problem.GoodList) > 0 {
		return i.Problem.GoodList
	}
	return []bdd.Ref{i.Problem.Good}
}

// genRandom mirrors the cross-validation generator of the verify tests:
// next-state functions are random k-term DNFs over all bits, the initial
// state is a single random state, and the property is the complement of
// a sparse random cube, partitioned into Parts conjuncts whose
// conjunction is exactly the property. The draw order (and therefore
// every instance any historical seed reproduces) is unchanged from the
// manager-based generator this replaces — the rng stream is part of the
// seed-file contract.
func genRandom(p Params) *ir.Model {
	rng := rand.New(rand.NewSource(p.Seed))
	b := ir.NewBuilder(KindRandom)

	state := make([]*ir.Node, p.StateBits)
	inputs := make([]*ir.Node, p.InputBits)
	for i := range state {
		state[i] = b.State(fmt.Sprintf("s%d", i), false)
	}
	for i := range inputs {
		inputs[i] = b.Input(fmt.Sprintf("x%d", i))
	}
	all := append(append([]*ir.Node(nil), state...), inputs...)

	terms := p.Terms
	if terms < 1 {
		terms = 3
	}
	randFn := func() *ir.Node {
		f := ir.Bool(false)
		for t := 0; t < terms; t++ {
			cube := ir.Bool(true)
			for _, v := range all {
				switch rng.Intn(3) {
				case 0:
					cube = ir.And(cube, v)
				case 1:
					cube = ir.And(cube, ir.Not(v))
				}
			}
			f = ir.Or(f, cube)
		}
		return f
	}
	for _, s := range state {
		b.SetNext(s, randFn())
	}

	if p.Constraint && len(inputs) > 0 {
		// A single input literal: always satisfiable, so no state
		// deadlocks; it halves the enabled input space.
		v := inputs[rng.Intn(len(inputs))]
		if rng.Intn(2) == 0 {
			b.Constrain(v)
		} else {
			b.Constrain(ir.Not(v))
		}
	}

	for _, s := range state {
		b.SetInit(s, rng.Intn(2) == 1)
	}

	// Property: complement of a sparse random set, so it holds on most
	// states and both verdicts occur across seeds.
	badCube := ir.Bool(true)
	for _, s := range state {
		switch rng.Intn(3) {
		case 0:
			badCube = ir.And(badCube, s)
		case 1:
			badCube = ir.And(badCube, ir.Not(s))
		}
	}
	good := ir.Not(badCube)

	parts := p.Parts
	if parts < 1 {
		parts = 1
	}
	b.Good(good)
	for k := 1; k < parts; k++ {
		// Each extra conjunct is implied by good, so the conjunction of
		// the partition is exactly good.
		lit := state[rng.Intn(len(state))]
		if rng.Intn(2) == 0 {
			lit = ir.Not(lit)
		}
		b.Good(ir.Or(good, lit))
	}

	return b.Build()
}

// RandomParams draws a random instance recipe: mostly random machines at
// oracle-checkable sizes, with a steady minority of mutated benchmark
// models. The instance seed is drawn from rng too, so a single icifuzz
// master seed determines the whole campaign.
func RandomParams(rng *rand.Rand) Params {
	p := Params{Seed: rng.Int63()}
	switch rng.Intn(10) {
	case 0: // fifo mutation
		p.Kind = KindFIFO
		p.Width = 1 + rng.Intn(2)
		p.Depth = 1 + rng.Intn(3)
		p.Bug = rng.Intn(2) == 0
	case 1: // filter mutation
		p.Kind = KindFilter
		p.Depth = 2 << rng.Intn(2) // 2 or 4
		p.Width = 1
		p.Assist = rng.Intn(2) == 0
		p.Bug = rng.Intn(3) == 0
	case 2: // pipeline mutation
		p.Kind = KindPipeline
		p.Depth = 2
		p.Width = 1 + rng.Intn(2)
		p.Assist = rng.Intn(2) == 0
		p.Bug = rng.Intn(3) == 0
	default:
		p.Kind = KindRandom
		p.StateBits = 2 + rng.Intn(5)
		p.InputBits = 1 + rng.Intn(3)
		p.Terms = 1 + rng.Intn(4)
		p.Parts = 1 + rng.Intn(3)
		p.Constraint = rng.Intn(4) == 0
		p.ConstGood = rng.Intn(8) == 0
	}
	// A quarter of every kind runs on the shared-memory concurrent
	// manager, cross-checking it against the sequential one and the
	// oracle throughout the campaign.
	p.Shared = rng.Intn(4) == 0
	return p
}
