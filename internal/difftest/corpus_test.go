package difftest

import (
	"path/filepath"
	"testing"

	"repro/internal/verify"
)

// TestCorpus replays every seed file under testdata/corpus: the paper's
// benchmark instances at oracle-checkable sizes plus one regression seed
// per bug this harness has caught. Every instance must run divergence
// free, every violated verdict must carry a Validate-clean trace of the
// agreed depth, and each bugged seed must actually be violated (a corpus
// seed that stops failing is itself a regression).
func TestCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("empty corpus")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			sf, err := LoadSeed(path)
			if err != nil {
				t.Fatal(err)
			}
			inst, err := Generate(sf.Params)
			if err != nil {
				t.Fatal(err)
			}
			rep := RunInstance(inst, Config{})
			if rep.Divergent() {
				t.Fatalf("corpus seed diverges:\n%s", rep.NDJSON())
			}
			sawViolated := false
			for _, v := range rep.Verdicts {
				if v.Outcome != "violated" {
					continue
				}
				sawViolated = true
				if v.TraceErr != "" {
					t.Errorf("%s: unusable trace: %s", v.Engine, v.TraceErr)
				}
				if v.TraceLen != v.Depth {
					t.Errorf("%s: trace length %d != depth %d", v.Engine, v.TraceLen, v.Depth)
				}
			}
			if sf.Params.Bug && !sawViolated {
				t.Error("bugged seed no longer violates — the model's bug went dead")
			}

			// A violated corpus instance must also replay through the
			// partition directly — the SAT-verdict/trace contract,
			// checked here once more outside the driver.
			if sawViolated {
				res := verify.Run(inst.Problem, verify.Forward, verify.Options{WantTrace: true})
				if res.Outcome != verify.Violated {
					t.Fatalf("Forward disagrees with corpus verdicts: %v", res.Outcome)
				}
				if res.Trace == nil {
					t.Fatal("Forward produced no trace")
				}
				if err := res.Trace.Validate(inst.Machine, inst.goodList()); err != nil {
					t.Errorf("Forward trace does not replay: %v", err)
				}
			}

			// Replay the same seed on the shared-memory concurrent
			// manager: every engine's verdict (outcome, depth, cause,
			// trace shape) must be identical to the sequential run's —
			// the acceptance contract of the concurrent mode.
			sp := sf.Params
			sp.Shared = true
			sinst, err := Generate(sp)
			if err != nil {
				t.Fatal(err)
			}
			srep := RunInstance(sinst, Config{})
			if srep.Divergent() {
				t.Fatalf("seed diverges on the concurrent manager:\n%s", srep.NDJSON())
			}
			if len(srep.Verdicts) != len(rep.Verdicts) {
				t.Fatalf("verdict count %d != sequential %d", len(srep.Verdicts), len(rep.Verdicts))
			}
			for i, v := range rep.Verdicts {
				if srep.Verdicts[i] != v {
					t.Errorf("concurrent-manager verdict differs: %+v != %+v", srep.Verdicts[i], v)
				}
			}
		})
	}
}

// TestCorpusPDR replays the full corpus through the PDR engine family
// alone (with Forward as the agreed reference), on both the sequential
// and the shared-memory concurrent manager. TestCorpus already runs PDR
// inside the full grid; this focused replay is the one the race-mode CI
// shard runs, so PDR's obligation machinery gets exercised under the
// race detector without paying for the whole engine grid.
func TestCorpusPDR(t *testing.T) {
	specs, err := FilterEngines(DefaultEngines(), []string{"Fwd", "PDR"})
	if err != nil {
		t.Fatal(err)
	}
	paths, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("empty corpus")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			sf, err := LoadSeed(path)
			if err != nil {
				t.Fatal(err)
			}
			for _, shared := range []bool{false, true} {
				p := sf.Params
				p.Shared = shared
				inst, err := Generate(p)
				if err != nil {
					t.Fatal(err)
				}
				rep := RunInstance(inst, Config{Engines: specs})
				if rep.Divergent() {
					t.Fatalf("shared=%v: PDR diverges:\n%s", shared, rep.NDJSON())
				}
			}
		})
	}
}

// TestFilterEngines: base names keep their ablations, full names are
// exact, unknown names fail loudly.
func TestFilterEngines(t *testing.T) {
	specs := DefaultEngines()

	pdr, err := FilterEngines(specs, []string{"pdr"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pdr) != 2 || pdr[0].Name != "PDR" || pdr[1].Name != "PDR/nopolicy" {
		t.Fatalf("pdr filter kept %+v", pdr)
	}

	exact, err := FilterEngines(specs, []string{"XICI/gc2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) != 1 || exact[0].Name != "XICI/gc2" {
		t.Fatalf("exact filter kept %+v", exact)
	}

	if _, err := FilterEngines(specs, []string{"Fwd", "nope"}); err == nil {
		t.Fatal("unknown engine name did not error")
	}
}
